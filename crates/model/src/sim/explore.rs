//! Exhaustive schedule exploration (stateless model checking).
//!
//! Enumerates every schedule of a bounded execution by depth-first search
//! over the *schedule tree*: each node is a decision point, its children
//! the runnable processes. Each tree path is executed as an ordinary
//! simulated run (bodies are re-created per run and must be deterministic
//! functions of their reads — re-running a prefix then reaches the same
//! decision point with the same runnable set).
//!
//! This is how the paper's linearizability theorems (26 and 33) are
//! checked exhaustively on small instances: every interleaving of a
//! 2–3 process execution is generated and its history verified.

use super::budget::{Budget, Budgeted};
use super::shrink::{shrink_execution, ShrinkConfig, ShrinkReport};
use super::strategy::{Decision, SchedView, Strategy};
use super::{run_sim_with, ProcBody, SimConfig, SimOutcome};
use crate::contention::{ContentionMap, ContentionProfiler};
use crate::ctx::{AccessKind, ProcId};
use crate::json::Json;
use crate::metrics::MetricsLevel;
use crate::span::SpanRecorder;
use crate::telemetry::{Heartbeat, ProgressBeat};
use std::time::{Duration, Instant};

/// Per-run child spans are recorded for at most this many runs; later
/// runs only contribute to the root span's counters. Keeps span trees
/// bounded on million-run explorations.
const SPAN_RUN_CAP: u64 = 32;

/// Exploration limits and forensics hooks.
///
/// The shared limits (run cap, branching depth, crash budget,
/// heartbeat) live in an embedded [`Budget`] and are set through the
/// [`Budgeted`] vocabulary common to all exploration configs;
/// explorer-specific knobs (worker threads, shrinking, span tracing)
/// are inherent methods. Construct fluently in the `SimBuilder` idiom:
///
/// ```
/// use apram_model::sim::{Budgeted, ExploreConfig};
/// let cfg = ExploreConfig::new()
///     .max_runs(10_000)
///     .max_depth(8)
///     .max_crashes(1)
///     .threads(4);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExploreConfig {
    /// Shared limits: [`Budget::max_runs`] stops the search even if the
    /// tree is not exhausted; [`Budget::max_depth`] restricts branching
    /// to the first `max_depth` decision points (beyond it the first
    /// runnable process is chosen deterministically — runs remain
    /// complete executions, coverage is exhaustive over the prefix);
    /// [`Budget::max_crashes`] is the fault budget `f` (at every
    /// decision point within `max_depth` where fewer than `f` crashes
    /// have fired, the tree also branches on crashing each runnable
    /// process); [`Budget::heartbeat`] streams live progress.
    pub budget: Budget,
    /// Worker-thread count used by the parallel engines when their
    /// explicit `threads` argument is 0 (in which case 0 here still
    /// means "all available parallelism"). Ignored by the sequential
    /// explorers.
    pub threads: usize,
    /// When set, a run rejected by the `visit` callback (a violation) is
    /// minimized with [`shrink_execution`] before exploration returns
    /// (the crash pattern is minimized alongside the schedule); the
    /// result lands in [`ExploreStats::violation`].
    pub shrink: Option<ShrinkConfig>,
    /// Record a span tree of the exploration (per-run spans for the
    /// first few runs, aggregate counters on the root) into
    /// [`ExploreStats::spans`].
    pub trace_spans: bool,
    /// Profile per-cell contention across every explored run into
    /// [`ExploreStats::contention`] (hot cells, stall edges, and
    /// contention-charged step totals). The map merges
    /// partition-independently, so the parallel engines report the same
    /// map as the sequential explorers on exhaustion.
    pub profile: bool,
}

impl Budgeted for ExploreConfig {
    fn budget_mut(&mut self) -> &mut Budget {
        &mut self.budget
    }
}

impl ExploreConfig {
    /// Default limits (1M runs, unbounded depth, no crashes, no
    /// forensics hooks), ready for fluent chaining.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker-thread count for the parallel engines (0 = all available
    /// parallelism); used when their explicit argument is 0.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Minimize rejected runs with the given shrinker configuration.
    pub fn shrink(mut self, cfg: ShrinkConfig) -> Self {
        self.shrink = Some(cfg);
        self
    }

    /// Record a span tree of the exploration.
    pub fn trace_spans(mut self, on: bool) -> Self {
        self.trace_spans = on;
        self
    }

    /// Profile per-cell contention across every explored run.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }
}

/// Emit one progress beat (shared by the sequential explorers and the
/// parallel engine's monitor).
pub(crate) fn emit_beat(
    hb: &Heartbeat,
    elapsed: Duration,
    runs: u64,
    sleep_skips: u64,
    queue_depth: usize,
    violation_found: bool,
) {
    hb.emit(&ProgressBeat {
        elapsed,
        runs,
        sleep_skips,
        queue_depth,
        violation_found,
    });
}

/// The canonical violating execution, exactly as first found — the
/// schedule and crash pattern of the rejected run, before any
/// minimization. Unlike [`ExploreStats::violation`] it is recorded even
/// without a shrink config, so callers (e.g. the
/// [certifier](mod@super::certify)) can drive their own shrinking with a
/// stronger predicate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutionWitness {
    /// The executed schedule of the rejected run.
    pub schedule: Vec<ProcId>,
    /// The crashes that fired during it, as replayable `(proc, step)`
    /// pairs.
    pub crashes: Vec<(ProcId, u64)>,
}

/// Exploration summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Number of complete runs executed.
    pub runs: u64,
    /// `true` when the whole schedule tree was exhausted (within
    /// `max_depth`).
    pub exhausted: bool,
    /// `true` when some decision point beyond `max_depth` was truncated.
    pub truncated: bool,
    /// Total scheduler decisions made across all runs.
    pub executed_steps: u64,
    /// Decisions that merely replayed a previously recorded prefix to
    /// re-reach a branch point (the intrinsic overhead of stateless
    /// search; always `< executed_steps` once more than one run exists).
    pub replayed_steps: u64,
    /// Deepest decision point reached in any run (in steps).
    pub max_depth_reached: usize,
    /// Branch choices pruned by sleep sets — subtrees that
    /// [`explore_reduced`] proved redundant and never entered. Always 0
    /// for plain [`explore`].
    pub sleep_skips: u64,
    /// Crash decisions taken across all runs (including replayed prefix
    /// crashes); 0 unless [`Budget::max_crashes`](super::Budget::max_crashes) is set.
    pub crash_branches: u64,
    /// The canonical rejected execution, unshrunk; recorded whenever a
    /// `visit` callback rejected a run (with or without a shrink
    /// config).
    pub witness: Option<ExecutionWitness>,
    /// The minimized counterexample, when the `visit` callback rejected a
    /// run and [`ExploreConfig::shrink`] was set.
    pub violation: Option<ShrinkReport>,
    /// The exploration's span tree, when [`ExploreConfig::trace_spans`]
    /// was set.
    pub spans: Option<crate::span::SpanNode>,
    /// Wall-clock time the exploration took (including shrinking).
    pub elapsed: Duration,
    /// Complete runs executed by each worker (one entry per worker;
    /// the sequential explorers report a single entry equal to
    /// [`runs`](Self::runs)). Sums to `runs` up to budget-race slack,
    /// and exposes load imbalance across the parallel engine's workers.
    pub worker_runs: Vec<u64>,
    /// Tasks each worker popped that a *different* worker had
    /// delegated — actual steals, excluding the root task and
    /// self-produced work. All zeros for the sequential explorers.
    pub worker_steals: Vec<u64>,
    /// The contention profile aggregated over every executed run, when
    /// [`ExploreConfig::profile`] was set.
    pub contention: Option<ContentionMap>,
}

impl ExploreStats {
    /// Fraction of discovered branch choices that sleep-set reduction
    /// pruned: `sleep_skips / (sleep_skips + runs)`. 0 when nothing was
    /// pruned (in particular for plain [`explore`]).
    pub fn pruning_ratio(&self) -> f64 {
        let total = self.sleep_skips + self.runs;
        if total == 0 {
            0.0
        } else {
            self.sleep_skips as f64 / total as f64
        }
    }

    /// Replayed fraction of all executed steps — how much work stateless
    /// re-execution spent re-reaching branch points.
    pub fn replay_ratio(&self) -> f64 {
        if self.executed_steps == 0 {
            0.0
        } else {
            self.replayed_steps as f64 / self.executed_steps as f64
        }
    }

    /// Exploration throughput in complete runs per wall-clock second.
    /// 0 when no time was measured (e.g. a hand-built stats value).
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.runs as f64 / secs
        }
    }

    /// JSON summary (counters, flags, wall-clock timing, and the shrunk
    /// violation when present) — the stats side of BENCH reports, so
    /// reports and span traces agree on throughput.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("runs", Json::UInt(self.runs)),
            ("exhausted", Json::Bool(self.exhausted)),
            ("truncated", Json::Bool(self.truncated)),
            ("executed_steps", Json::UInt(self.executed_steps)),
            ("replayed_steps", Json::UInt(self.replayed_steps)),
            (
                "max_depth_reached",
                Json::UInt(self.max_depth_reached as u64),
            ),
            ("sleep_skips", Json::UInt(self.sleep_skips)),
            ("crash_branches", Json::UInt(self.crash_branches)),
            ("elapsed_secs", Json::Float(self.elapsed.as_secs_f64())),
            ("runs_per_sec", Json::Float(self.runs_per_sec())),
            (
                "worker_runs",
                Json::Arr(self.worker_runs.iter().map(|&r| Json::UInt(r)).collect()),
            ),
            (
                "worker_steals",
                Json::Arr(self.worker_steals.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            (
                "violation",
                match &self.violation {
                    Some(report) => report.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "contention",
                match &self.contention {
                    Some(map) => map.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// A decision point in the plain (unreduced) DFS. The choice list is
/// logically `[Step(p) for p in choices] ++ [Crash(p) for p in choices]`
/// — the crash suffix present only when the crash budget had room at
/// this node — so picks below `choices.len()` are steps and picks at or
/// above it are crashes. Steps come first, which makes `max_crashes: 0`
/// exploration bit-identical to the historical crash-free engine.
struct Branch {
    choices: Vec<ProcId>,
    /// Number of crash choices appended after the step choices: either
    /// `choices.len()` or 0 (crash budget already spent on this path).
    crashes: usize,
    pick: usize,
}

impl Branch {
    fn total(&self) -> usize {
        self.choices.len() + self.crashes
    }

    fn decision(&self) -> Decision {
        if self.pick < self.choices.len() {
            Decision::Step(self.choices[self.pick])
        } else {
            Decision::Crash(self.choices[self.pick - self.choices.len()])
        }
    }
}

struct TreeStrategy<'a> {
    stack: &'a mut Vec<Branch>,
    pos: usize,
    max_depth: usize,
    max_crashes: usize,
    /// Crash decisions taken so far in *this* run (replayed or fresh);
    /// the budget is a pure function of the pick path.
    crashes_used: usize,
    stats: &'a mut ExploreStats,
}

impl Strategy for TreeStrategy<'_> {
    fn decide(&mut self, view: &SchedView) -> Decision {
        let decision = if self.pos < self.stack.len() {
            let b = &self.stack[self.pos];
            assert_eq!(
                b.choices.as_slice(),
                view.runnable,
                "explore: runnable set diverged on replay at step {}; \
                 process bodies must be deterministic",
                self.pos
            );
            self.stats.replayed_steps += 1;
            b.decision()
        } else if self.pos >= self.max_depth {
            self.stats.truncated = true;
            Decision::Step(view.runnable[0])
        } else {
            let crashes = if self.crashes_used < self.max_crashes {
                view.runnable.len()
            } else {
                0
            };
            self.stack.push(Branch {
                choices: view.runnable.to_vec(),
                crashes,
                pick: 0,
            });
            Decision::Step(view.runnable[0])
        };
        if matches!(decision, Decision::Crash(_)) {
            self.crashes_used += 1;
            self.stats.crash_branches += 1;
        }
        self.stats.executed_steps += 1;
        self.pos += 1;
        self.stats.max_depth_reached = self.stats.max_depth_reached.max(self.pos);
        decision
    }
}

/// On a rejected run: minimize the failing schedule when configured,
/// recording the work in a `shrink` span.
fn capture_violation<T, R, FMake, Visit>(
    cfg: &SimConfig<T>,
    econfig: &ExploreConfig,
    outcome: &SimOutcome<T, R>,
    factory: &mut FMake,
    visit: &mut Visit,
    stats: &mut ExploreStats,
    spans: &mut Option<SpanRecorder>,
) where
    T: Clone + Send,
    R: Send,
    FMake: FnMut() -> Vec<ProcBody<'static, T, R>>,
    Visit: FnMut(&SimOutcome<T, R>) -> bool,
{
    stats.witness = Some(ExecutionWitness {
        schedule: outcome.trace.schedule(),
        crashes: outcome.executed_crashes(),
    });
    let Some(scfg) = &econfig.shrink else {
        return;
    };
    if let Some(s) = spans.as_mut() {
        s.enter("shrink");
    }
    let report = shrink_execution(
        cfg,
        scfg,
        &outcome.trace.schedule(),
        &outcome.executed_crashes(),
        factory,
        |o| !visit(o),
    );
    if let Some(s) = spans.as_mut() {
        s.bump("attempts", report.stats.attempts);
        s.bump("useful", report.stats.useful);
        s.bump("removed", report.removed() as u64);
        s.exit();
    }
    stats.violation = Some(report);
}

/// Fold the finished span tree (plus aggregate counters) into the stats.
fn finish_spans(stats: &mut ExploreStats, spans: Option<SpanRecorder>) {
    if let Some(mut s) = spans {
        s.bump("replayed_steps", stats.replayed_steps);
        s.bump("max_depth", stats.max_depth_reached as u64);
        if stats.sleep_skips > 0 {
            s.bump("sleep_skips", stats.sleep_skips);
        }
        stats.spans = Some(s.finish());
    }
}

/// Exhaustively explore the schedules of the execution defined by
/// `factory` (called once per run; it must return equivalent,
/// deterministic bodies every time).
///
/// `visit` is called with each run's outcome; return `false` to stop
/// early (e.g. on the first counterexample). When
/// [`ExploreConfig::shrink`] is set, a rejected run's schedule is
/// minimized (re-invoking `visit` on each shrink candidate) and returned
/// in [`ExploreStats::violation`].
pub fn explore<T, R, FMake, Visit>(
    cfg: &SimConfig<T>,
    econfig: &ExploreConfig,
    mut factory: FMake,
    mut visit: Visit,
) -> ExploreStats
where
    T: Clone + Send,
    R: Send,
    FMake: FnMut() -> Vec<ProcBody<'static, T, R>>,
    Visit: FnMut(&SimOutcome<T, R>) -> bool,
{
    let start = Instant::now();
    let mut last_beat = Instant::now();
    let mut violated = false;
    let mut stack: Vec<Branch> = Vec::new();
    let mut stats = ExploreStats::default();
    let mut spans = econfig.trace_spans.then(|| SpanRecorder::new("explore"));
    let mut prof: Option<ContentionProfiler> = None;
    loop {
        let detailed = spans.is_some() && stats.runs < SPAN_RUN_CAP;
        if detailed {
            spans.as_mut().expect("checked").enter("run");
        }
        let mut strategy = TreeStrategy {
            stack: &mut stack,
            pos: 0,
            max_depth: econfig.budget.max_depth,
            max_crashes: econfig.budget.max_crashes,
            crashes_used: 0,
            stats: &mut stats,
        };
        let bodies = factory();
        if econfig.profile && prof.is_none() {
            prof = Some(ContentionProfiler::new(bodies.len(), cfg.registers.len()));
        }
        let outcome = run_sim_with(cfg, MetricsLevel::Off, &mut strategy, bodies, prof.as_mut());
        let run_steps = outcome.trace.len() as u64;
        if let Some(s) = spans.as_mut() {
            if detailed {
                s.bump("steps", run_steps);
                s.exit();
            }
            s.bump("runs", 1);
            s.bump("steps", run_steps);
        }
        stats.runs += 1;
        if let Some(hb) = &econfig.budget.heartbeat {
            if last_beat.elapsed() >= hb.every {
                emit_beat(hb, start.elapsed(), stats.runs, 0, stack.len(), false);
                last_beat = Instant::now();
            }
        }
        if !visit(&outcome) {
            capture_violation(
                cfg,
                econfig,
                &outcome,
                &mut factory,
                &mut visit,
                &mut stats,
                &mut spans,
            );
            violated = true;
            break;
        }
        if stats.runs >= econfig.budget.max_runs {
            break;
        }
        // Advance to the next schedule: drop exhausted trailing branches,
        // bump the deepest one with choices left.
        while let Some(last) = stack.last() {
            if last.pick + 1 < last.total() {
                break;
            }
            stack.pop();
        }
        match stack.last_mut() {
            Some(last) => last.pick += 1,
            None => {
                stats.exhausted = true;
                break;
            }
        }
    }
    stats.elapsed = start.elapsed();
    stats.worker_runs = vec![stats.runs];
    stats.worker_steals = vec![0];
    stats.contention = prof.map(ContentionProfiler::into_map);
    if let Some(hb) = &econfig.budget.heartbeat {
        emit_beat(hb, stats.elapsed, stats.runs, 0, stack.len(), violated);
    }
    finish_spans(&mut stats, spans);
    stats
}

/// Are two pending accesses *independent* (they commute as memory
/// operations)? True when they touch different registers, or both read.
pub(crate) fn independent(a: (AccessKind, usize), b: (AccessKind, usize)) -> bool {
    a.1 != b.1 || (a.0 == AccessKind::Read && b.0 == AccessKind::Read)
}

/// A decision point in the sleep-set DFS.
///
/// Shared with the parallel engine ([`super::parallel`]), which rebuilds
/// identical nodes while replaying a branch-path prefix: every field is a
/// pure function of the sequence of pick indices leading to the node,
/// which is what makes prefix tasks self-contained.
pub(crate) struct SleepNode {
    /// Runnable processes at this decision point (sorted).
    pub(crate) choices: Vec<ProcId>,
    /// The pending access of each runnable process, parallel to
    /// `choices`. Empty when built without reduction.
    pub(crate) accesses: Vec<(AccessKind, usize)>,
    /// Number of crash choices appended after the step choices: either
    /// `choices.len()` (crash budget had room at this node) or 0. Crash
    /// choice `choices.len() + i` crashes process `choices[i]`.
    pub(crate) crash_choices: usize,
    /// Bitmask over process ids: processes asleep at this node.
    /// Exploring them here is redundant (an independence-commuted
    /// schedule already covers it).
    pub(crate) sleep: u64,
    /// Bitmask over process ids: processes whose *crash* branch is
    /// asleep at this node. A crash is an action of the victim with no
    /// memory effect, so it commutes with every action of every other
    /// process; an already-explored crash branch therefore stays asleep
    /// until its victim itself acts.
    pub(crate) crash_sleep: u64,
    /// Bitmask over indices into the widened choice list (steps then
    /// crashes): branches already fully explored from this node.
    pub(crate) explored: u64,
    /// Index into the widened choice list currently being explored.
    pub(crate) pick: usize,
    /// `true` when every choice was asleep here: the whole subtree is
    /// redundant; one arbitrary completion run is performed and the node
    /// is popped without exploring siblings.
    pub(crate) barren: bool,
}

impl SleepNode {
    /// Build the node for a fresh decision point reached by taking
    /// `parent.pick` at the previous one (`None` at the root). With
    /// `reduce == false` the sleep set stays empty and the node spans the
    /// full schedule tree (plain exploration). With `allow_crashes` the
    /// choice list is widened with one crash branch per runnable
    /// process.
    ///
    /// Its sleep set: a process q stays asleep while its pending access
    /// is independent of every executed action since q was put to sleep;
    /// executing a dependent action wakes it. Siblings explored before
    /// the parent's current pick fall asleep for this subtree when
    /// independent of the chosen action. Crashing a process is dependent
    /// exactly on that process's own actions — so a crash victim leaves
    /// the enabled set without waking any sleeping sibling, and explored
    /// crash branches sleep until their victim acts.
    pub(crate) fn fresh(
        view: &SchedView,
        parent: Option<&SleepNode>,
        reduce: bool,
        allow_crashes: bool,
    ) -> SleepNode {
        let max_id = *view.runnable.last().expect("runnable is non-empty");
        assert!(
            max_id < 64,
            "sleep-set bitmasks support at most 64 processes"
        );
        let crash_choices = if allow_crashes {
            view.runnable.len()
        } else {
            0
        };
        assert!(
            view.runnable.len() + crash_choices <= 64,
            "explored bitmask supports at most 64 widened choices"
        );
        let (sleep, crash_sleep) = match parent.filter(|_| reduce) {
            None => (0, 0),
            Some(parent) => {
                let n = parent.choices.len();
                // The chosen action at the parent: a step carrying its
                // access, or the crash of a victim.
                let chosen_access = (parent.pick < n).then(|| parent.accesses[parent.pick]);
                let chosen_proc = parent.choices[parent.pick % n];
                let mut sleep = 0u64;
                let mut crash_sleep = 0u64;
                for (i, &q) in parent.choices.iter().enumerate() {
                    let was_asleep = parent.sleep >> q & 1 == 1 || parent.explored >> i & 1 == 1;
                    let indep = match chosen_access {
                        Some(acc) => independent(parent.accesses[i], acc),
                        // crash(chosen_proc) commutes with any step of
                        // another process.
                        None => q != chosen_proc,
                    };
                    if was_asleep && indep {
                        sleep |= 1 << q;
                    }
                }
                for i in 0..parent.crash_choices {
                    let v = parent.choices[i];
                    let was_asleep =
                        parent.crash_sleep >> v & 1 == 1 || parent.explored >> (n + i) & 1 == 1;
                    // crash(v) commutes with any action whose process
                    // is not v (steps and crashes alike).
                    if was_asleep && v != chosen_proc {
                        crash_sleep |= 1 << v;
                    }
                }
                (sleep, crash_sleep)
            }
        };
        let accesses = if reduce {
            view.runnable
                .iter()
                .map(|&p| view.pending[p].expect("runnable implies pending"))
                .collect()
        } else {
            Vec::new()
        };
        SleepNode {
            choices: view.runnable.to_vec(),
            accesses,
            crash_choices,
            sleep,
            crash_sleep,
            explored: 0,
            pick: 0,
            barren: false,
        }
    }

    /// Widened choice count: steps plus crash branches.
    pub(crate) fn total(&self) -> usize {
        self.choices.len() + self.crash_choices
    }

    /// The scheduler decision encoded by the current pick.
    pub(crate) fn decision(&self) -> Decision {
        if self.pick < self.choices.len() {
            Decision::Step(self.choices[self.pick])
        } else {
            Decision::Crash(self.choices[self.pick - self.choices.len()])
        }
    }

    /// Is (widened) choice `i` asleep at this node?
    pub(crate) fn asleep(&self, i: usize) -> bool {
        if i < self.choices.len() {
            self.sleep >> self.choices[i] & 1 == 1
        } else {
            self.crash_sleep >> self.choices[i - self.choices.len()] & 1 == 1
        }
    }

    /// The first explorable choice (neither explored nor asleep) at or
    /// after `from`. One O(1) probe per candidate — the masks replace
    /// the former `Vec::contains` scans on this hot path.
    pub(crate) fn next_explorable(&self, from: usize) -> Option<usize> {
        (from..self.total()).find(|&i| self.explored >> i & 1 == 0 && !self.asleep(i))
    }

    /// Choices never explored from this node — once every explorable
    /// branch is done, exactly the ones its sleep set pruned.
    pub(crate) fn unexplored(&self) -> u64 {
        self.total() as u64 - u64::from(self.explored.count_ones())
    }

    /// Number of asleep choices — the branches reduction prunes here.
    pub(crate) fn asleep_count(&self) -> u64 {
        (0..self.total()).filter(|&i| self.asleep(i)).count() as u64
    }
}

struct SleepStrategy<'a> {
    stack: &'a mut Vec<SleepNode>,
    pos: usize,
    max_depth: usize,
    max_crashes: usize,
    /// Crash decisions taken so far in this run (replayed or fresh).
    crashes_used: usize,
    stats: &'a mut ExploreStats,
    /// Set once a barren node is entered this run: no further nodes are
    /// pushed (the tail is completed deterministically and never
    /// revisited, because the barren ancestor pops on backtrack).
    redundant_tail: bool,
}

impl SleepStrategy<'_> {
    fn step_accounting(&mut self, replayed: bool, decision: Decision) {
        if matches!(decision, Decision::Crash(_)) {
            self.crashes_used += 1;
            self.stats.crash_branches += 1;
        }
        self.stats.executed_steps += 1;
        if replayed {
            self.stats.replayed_steps += 1;
        }
        self.pos += 1;
        self.stats.max_depth_reached = self.stats.max_depth_reached.max(self.pos);
    }
}

impl Strategy for SleepStrategy<'_> {
    fn decide(&mut self, view: &SchedView) -> Decision {
        let replayed = self.pos < self.stack.len();
        let decision = if replayed {
            let node = &self.stack[self.pos];
            debug_assert_eq!(
                node.choices.as_slice(),
                view.runnable,
                "explore_reduced: runnable set diverged on replay"
            );
            node.decision()
        } else if self.redundant_tail || self.pos >= self.max_depth {
            if !self.redundant_tail {
                self.stats.truncated = true;
            }
            Decision::Step(view.runnable[0])
        } else {
            // Push a fresh node; its sleep set derives from the parent
            // (see [`SleepNode::fresh`]).
            let parent = self.pos.checked_sub(1).map(|i| &self.stack[i]);
            let allow_crashes = self.crashes_used < self.max_crashes;
            let mut node = SleepNode::fresh(view, parent, true, allow_crashes);
            // First explorable choice (skip asleep branches).
            match node.next_explorable(0) {
                Some(i) => node.pick = i,
                None => {
                    // Every choice is asleep: this whole subtree is
                    // covered elsewhere. Record a barren node (keeping
                    // stack positions aligned with decision positions),
                    // complete this run deterministically, and let the
                    // backtracker pop it without exploring siblings.
                    node.barren = true;
                    self.redundant_tail = true;
                }
            }
            let d = node.decision();
            self.stack.push(node);
            self.step_accounting(false, d);
            return d;
        };
        self.step_accounting(replayed, decision);
        decision
    }
}

/// Exhaustive exploration with **sleep-set partial-order reduction**
/// (Godefroid): schedules that differ only by swapping adjacent
/// *independent* accesses (different registers, or read/read) are
/// explored once. Typically exponentially fewer runs than [`explore`].
///
/// Soundness caveat: reduction preserves all memory-level behaviours
/// (per-process results and final register contents — every
/// Mazurkiewicz trace is represented), but *not* every real-time event
/// ordering: two commuting accesses may still order one operation's
/// response against another's invocation. Use plain [`explore`] when
/// the property under test is sensitive to real-time precedence between
/// otherwise-independent operations (e.g. exhaustive linearizability
/// certification); use this for result/state assertions and bug
/// hunting.
pub fn explore_reduced<T, R, FMake, Visit>(
    cfg: &SimConfig<T>,
    econfig: &ExploreConfig,
    mut factory: FMake,
    mut visit: Visit,
) -> ExploreStats
where
    T: Clone + Send,
    R: Send,
    FMake: FnMut() -> Vec<ProcBody<'static, T, R>>,
    Visit: FnMut(&SimOutcome<T, R>) -> bool,
{
    let start = Instant::now();
    let mut last_beat = Instant::now();
    let mut violated = false;
    let mut stack: Vec<SleepNode> = Vec::new();
    let mut stats = ExploreStats::default();
    let mut spans = econfig
        .trace_spans
        .then(|| SpanRecorder::new("explore_reduced"));
    let mut prof: Option<ContentionProfiler> = None;
    'outer: loop {
        let detailed = spans.is_some() && stats.runs < SPAN_RUN_CAP;
        if detailed {
            spans.as_mut().expect("checked").enter("run");
        }
        let mut strategy = SleepStrategy {
            stack: &mut stack,
            pos: 0,
            max_depth: econfig.budget.max_depth,
            max_crashes: econfig.budget.max_crashes,
            crashes_used: 0,
            stats: &mut stats,
            redundant_tail: false,
        };
        let bodies = factory();
        if econfig.profile && prof.is_none() {
            prof = Some(ContentionProfiler::new(bodies.len(), cfg.registers.len()));
        }
        let outcome = run_sim_with(cfg, MetricsLevel::Off, &mut strategy, bodies, prof.as_mut());
        let run_steps = outcome.trace.len() as u64;
        if let Some(s) = spans.as_mut() {
            if detailed {
                s.bump("steps", run_steps);
                s.exit();
            }
            s.bump("runs", 1);
            s.bump("steps", run_steps);
        }
        stats.runs += 1;
        if let Some(hb) = &econfig.budget.heartbeat {
            if last_beat.elapsed() >= hb.every {
                emit_beat(
                    hb,
                    start.elapsed(),
                    stats.runs,
                    stats.sleep_skips,
                    stack.len(),
                    false,
                );
                last_beat = Instant::now();
            }
        }
        if !visit(&outcome) {
            capture_violation(
                cfg,
                econfig,
                &outcome,
                &mut factory,
                &mut visit,
                &mut stats,
                &mut spans,
            );
            violated = true;
            break 'outer;
        }
        if stats.runs >= econfig.budget.max_runs {
            break 'outer;
        }
        // Backtrack: mark the deepest node's pick explored and move to
        // its next explorable choice; pop exhausted nodes.
        loop {
            match stack.last_mut() {
                None => {
                    stats.exhausted = true;
                    break 'outer;
                }
                Some(node) => {
                    if node.barren {
                        // The entire node was redundant: every choice
                        // was pruned by its sleep set.
                        stats.sleep_skips += node.total() as u64;
                        stack.pop();
                        continue;
                    }
                    node.explored |= 1 << node.pick;
                    match node.next_explorable(0) {
                        Some(next) => {
                            node.pick = next;
                            break;
                        }
                        None => {
                            // Choices never explored here were pruned
                            // (asleep) — count them before popping.
                            stats.sleep_skips += node.unexplored();
                            stack.pop();
                        }
                    }
                }
            }
        }
    }
    stats.elapsed = start.elapsed();
    stats.worker_runs = vec![stats.runs];
    stats.worker_steals = vec![0];
    stats.contention = prof.map(ContentionProfiler::into_map);
    if let Some(hb) = &econfig.budget.heartbeat {
        emit_beat(
            hb,
            stats.elapsed,
            stats.runs,
            stats.sleep_skips,
            stack.len(),
            violated,
        );
    }
    finish_spans(&mut stats, spans);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::MemCtx;
    use crate::sim::SimCtx;
    use std::collections::HashSet;

    fn two_proc_bodies() -> Vec<ProcBody<'static, u64, u64>> {
        (0..2)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<u64>| {
                    ctx.write(p, p as u64 + 1);
                    ctx.read(1 - p)
                }) as ProcBody<'static, u64, u64>
            })
            .collect()
    }

    #[test]
    fn explores_all_interleavings_of_two_two_step_processes() {
        // Each process takes 2 steps; the number of interleavings of
        // 2+2 steps is C(4,2) = 6.
        let cfg = SimConfig::base(vec![0u64; 2]);
        let mut schedules = HashSet::new();
        let stats = explore(&cfg, &ExploreConfig::default(), two_proc_bodies, |out| {
            out.assert_no_panics();
            schedules.insert(out.trace.schedule());
            true
        });
        assert!(stats.exhausted);
        assert!(!stats.truncated);
        assert_eq!(stats.runs, 6);
        assert_eq!(schedules.len(), 6);
    }

    #[test]
    fn all_outcomes_observed() {
        // Across all interleavings, P0 must observe {0, 2}: 0 when it
        // reads before P1's write, 2 after.
        let cfg = SimConfig::base(vec![0u64; 2]);
        let mut seen = HashSet::new();
        explore(&cfg, &ExploreConfig::default(), two_proc_bodies, |out| {
            seen.insert((out.results[0].unwrap(), out.results[1].unwrap()));
            true
        });
        // Both reads can't miss both writes only in schedules where both
        // read first — impossible since each writes before reading. The
        // possible result pairs:
        assert!(seen.contains(&(2, 1)));
        assert!(seen.contains(&(0, 1)));
        assert!(seen.contains(&(2, 0)));
        assert!(
            !seen.contains(&(0, 0)),
            "both cannot miss the other's write"
        );
    }

    #[test]
    fn early_stop_works() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let stats = explore(&cfg, &ExploreConfig::default(), two_proc_bodies, |_| false);
        assert_eq!(stats.runs, 1);
        assert!(!stats.exhausted);
    }

    #[test]
    fn run_budget_respected() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let econfig = ExploreConfig::new().max_runs(3);
        let stats = explore(&cfg, &econfig, two_proc_bodies, |_| true);
        assert_eq!(stats.runs, 3);
        assert!(!stats.exhausted);
    }

    /// The sleep-set explorer covers exactly the same observable
    /// outcomes (results + final memory) as the full explorer, in fewer
    /// or equal runs.
    #[test]
    fn reduced_covers_all_outcomes() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let collect = |reduced: bool| {
            let mut outcomes = HashSet::new();
            let stats = if reduced {
                explore_reduced(&cfg, &ExploreConfig::default(), two_proc_bodies, |out| {
                    outcomes.insert((out.results.clone(), out.memory.clone()));
                    true
                })
            } else {
                explore(&cfg, &ExploreConfig::default(), two_proc_bodies, |out| {
                    outcomes.insert((out.results.clone(), out.memory.clone()));
                    true
                })
            };
            (outcomes, stats)
        };
        let (full, full_stats) = collect(false);
        let (reduced, reduced_stats) = collect(true);
        assert!(full_stats.exhausted && reduced_stats.exhausted);
        assert_eq!(full, reduced, "outcome sets must match");
        assert!(
            reduced_stats.runs <= full_stats.runs,
            "reduction must not add runs: {} vs {}",
            reduced_stats.runs,
            full_stats.runs
        );
    }

    /// Fully independent programs (each process touches only its own
    /// register) collapse to very few runs under reduction.
    #[test]
    fn reduced_collapses_independent_programs() {
        fn bodies() -> Vec<ProcBody<'static, u64, u64>> {
            (0..3)
                .map(|p| {
                    Box::new(move |ctx: &mut SimCtx<u64>| {
                        ctx.write(p, 1);
                        ctx.write(p, 2);
                        ctx.read(p)
                    }) as ProcBody<'static, u64, u64>
                })
                .collect()
        }
        let cfg = SimConfig::base(vec![0u64; 3]);
        let full = explore(&cfg, &ExploreConfig::default(), bodies, |_| true);
        let reduced = explore_reduced(&cfg, &ExploreConfig::default(), bodies, |out| {
            assert_eq!(out.results, vec![Some(2), Some(2), Some(2)]);
            true
        });
        assert!(full.exhausted && reduced.exhausted);
        // Full: multinomial(9; 3,3,3) = 1680 runs. Reduced: drastically
        // fewer (every interleaving is equivalent).
        assert_eq!(full.runs, 1680);
        assert!(
            reduced.runs * 50 <= full.runs,
            "expected ≥50× reduction, got {} vs {}",
            reduced.runs,
            full.runs
        );
    }

    /// Reduction on a contended program (everyone hammers one register)
    /// keeps every distinct outcome while pruning read/read commutation.
    #[test]
    fn reduced_contended_program_outcomes_match() {
        fn bodies() -> Vec<ProcBody<'static, u64, Vec<u64>>> {
            (0..2)
                .map(|p| {
                    Box::new(move |ctx: &mut SimCtx<u64>| {
                        let a = ctx.read(0);
                        ctx.write(0, a + 10 * (p as u64 + 1));
                        let b = ctx.read(0);
                        vec![a, b]
                    }) as ProcBody<'static, u64, Vec<u64>>
                })
                .collect()
        }
        let cfg = SimConfig::base(vec![0u64; 1]);
        let mut full_set = HashSet::new();
        let full = explore(&cfg, &ExploreConfig::default(), bodies, |out| {
            full_set.insert((out.results.clone(), out.memory.clone()));
            true
        });
        let mut red_set = HashSet::new();
        let reduced = explore_reduced(&cfg, &ExploreConfig::default(), bodies, |out| {
            red_set.insert((out.results.clone(), out.memory.clone()));
            true
        });
        assert!(full.exhausted && reduced.exhausted);
        assert_eq!(full_set, red_set);
        assert!(reduced.runs <= full.runs);
    }

    #[test]
    fn violation_is_captured_and_shrunk() {
        // Reject any run where P0 observed P1's write; exploration stops
        // there and hands back a minimized failing schedule.
        let cfg = SimConfig::base(vec![0u64; 2]);
        let econfig = ExploreConfig::new().shrink(crate::sim::shrink::ShrinkConfig::default());
        let stats = explore(&cfg, &econfig, two_proc_bodies, |out| {
            out.results[0] != Some(2) // "violation": P0 read 2
        });
        assert!(!stats.exhausted);
        let report = stats.violation.as_ref().expect("violation captured");
        assert!(report.schedule.len() <= report.original.len());
        // The minimal reproduction: P1 writes (one step), P0 writes then
        // reads — 3 steps, but P0's write is its first access so it
        // cannot be skipped. Minimal = [1, 0, 0].
        assert_eq!(report.schedule, vec![1, 0, 0]);
        // Re-running the shrunk schedule still shows the violation.
        let out = crate::sim::SimBuilder::new(vec![0u64; 2])
            .strategy(crate::sim::strategy::Replay::strict(
                report.schedule.clone(),
            ))
            .max_steps(report.schedule.len() as u64)
            .run(two_proc_bodies());
        assert_eq!(out.results[0], Some(2));
    }

    #[test]
    fn no_shrink_config_leaves_violation_empty() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let stats = explore(&cfg, &ExploreConfig::default(), two_proc_bodies, |_| false);
        assert_eq!(stats.runs, 1);
        assert!(stats.violation.is_none());
    }

    #[test]
    fn spans_capture_run_structure() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let econfig = ExploreConfig::new().trace_spans(true);
        let stats = explore(&cfg, &econfig, two_proc_bodies, |_| true);
        let spans = stats.spans.as_ref().expect("spans recorded");
        assert_eq!(spans.name, "explore");
        assert_eq!(spans.counter("runs"), Some(stats.runs));
        assert_eq!(spans.counter("steps"), Some(stats.executed_steps));
        assert_eq!(spans.counter("replayed_steps"), Some(stats.replayed_steps));
        // 6 runs, all under the cap: one child span each.
        assert_eq!(spans.children.len(), stats.runs as usize);
        assert!(spans.children.iter().all(|c| c.name == "run"));
    }

    #[test]
    fn reduced_spans_count_sleep_skips() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let econfig = ExploreConfig::new().trace_spans(true);
        let stats = explore_reduced(&cfg, &econfig, two_proc_bodies, |_| true);
        let spans = stats.spans.as_ref().expect("spans recorded");
        assert_eq!(spans.name, "explore_reduced");
        assert_eq!(spans.counter("runs"), Some(stats.runs));
        if stats.sleep_skips > 0 {
            assert_eq!(spans.counter("sleep_skips"), Some(stats.sleep_skips));
        }
    }

    #[test]
    fn shrink_span_nested_under_exploration() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let econfig = ExploreConfig::new()
            .shrink(crate::sim::shrink::ShrinkConfig::default())
            .trace_spans(true);
        let stats = explore(&cfg, &econfig, two_proc_bodies, |out| {
            out.results[0] != Some(2)
        });
        let spans = stats.spans.as_ref().expect("spans recorded");
        let shrink = spans
            .children
            .iter()
            .find(|c| c.name == "shrink")
            .expect("shrink span present");
        assert_eq!(
            shrink.counter("attempts"),
            Some(stats.violation.as_ref().unwrap().stats.attempts)
        );
    }

    /// `independent()` must be symmetric and agree with an execution
    /// oracle: two pending accesses are independent exactly when running
    /// them in either order yields the same observed values and the same
    /// final memory.
    #[test]
    fn independent_agrees_with_execution_oracle() {
        use crate::sim::strategy::Replay;
        use crate::sim::SimBuilder;
        let kinds = [AccessKind::Read, AccessKind::Write];
        let regs = [0usize, 1, 2];
        fn body(acc: (AccessKind, usize), val: u64) -> ProcBody<'static, u64, Option<u64>> {
            Box::new(move |ctx: &mut SimCtx<u64>| match acc.0 {
                AccessKind::Read => Some(ctx.read(acc.1)),
                AccessKind::Write => {
                    ctx.write(acc.1, val);
                    None
                }
            })
        }
        // P0 performs access `a` (writing 100), P1 access `b` (writing
        // 200); distinct written values so a swapped write order is
        // observable in memory.
        let run = |a, b, sched: Vec<ProcId>| {
            let out = SimBuilder::new(vec![7u64, 8, 9])
                .strategy(Replay::strict(sched))
                .run(vec![body(a, 100), body(b, 200)]);
            out.assert_no_panics();
            (out.results.clone(), out.memory.clone())
        };
        for a in kinds
            .iter()
            .flat_map(|&k| regs.iter().map(move |&r| (k, r)))
        {
            for b in kinds
                .iter()
                .flat_map(|&k| regs.iter().map(move |&r| (k, r)))
            {
                let commute = run(a, b, vec![0, 1]) == run(a, b, vec![1, 0]);
                assert_eq!(
                    independent(a, b),
                    commute,
                    "oracle disagrees on {a:?}/{b:?}"
                );
                assert_eq!(
                    independent(a, b),
                    independent(b, a),
                    "independence must be symmetric on {a:?}/{b:?}"
                );
            }
        }
    }

    #[test]
    fn stats_record_wall_clock_and_export_json() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let stats = explore(&cfg, &ExploreConfig::default(), two_proc_bodies, |_| true);
        assert!(stats.elapsed > Duration::ZERO);
        assert!(stats.runs_per_sec() > 0.0);
        let doc = stats.to_json();
        assert_eq!(doc.get("runs").and_then(Json::as_u64), Some(stats.runs));
        assert_eq!(doc.get("violation"), Some(&Json::Null));
        let secs = doc.get("elapsed_secs").and_then(Json::as_f64).unwrap();
        assert!((secs - stats.elapsed.as_secs_f64()).abs() < 1e-12);
        let rps = doc.get("runs_per_sec").and_then(Json::as_f64).unwrap();
        assert!((rps - stats.runs_per_sec()).abs() < 1e-6);
        // The export round-trips through the parser.
        let parsed = crate::json::parse(&doc.to_pretty(2)).unwrap();
        assert_eq!(parsed.get("runs").and_then(Json::as_u64), Some(stats.runs));
    }

    #[test]
    fn heartbeat_streams_progress_and_a_final_beat() {
        use crate::telemetry::{buffer_sink, Heartbeat};
        let cfg = SimConfig::base(vec![0u64; 2]);
        let (sink, buf) = buffer_sink();
        let econfig = ExploreConfig::new().heartbeat_with(Heartbeat::shared(Duration::ZERO, sink));
        let stats = explore(&cfg, &econfig, two_proc_bodies, |_| true);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // A zero interval beats after every run, plus the final beat.
        assert_eq!(lines.len() as u64, stats.runs + 1);
        for line in &lines {
            crate::json::parse(line).expect("every beat is valid JSON");
        }
        let last = crate::json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("runs").and_then(Json::as_u64), Some(stats.runs));
        assert_eq!(last.get("violation_found"), Some(&Json::Bool(false)));
        assert!(last.get("runs_per_sec").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn heartbeat_reports_violations_and_builder_api_works() {
        use crate::telemetry::buffer_sink;
        let cfg = SimConfig::base(vec![0u64; 2]);
        let (sink, buf) = buffer_sink();
        let econfig = ExploreConfig::new()
            .heartbeat_with(crate::telemetry::Heartbeat::shared(Duration::ZERO, sink));
        let stats = explore_reduced(&cfg, &econfig, two_proc_bodies, |out| {
            out.results[0] != Some(2)
        });
        assert!(!stats.exhausted);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let last = crate::json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(last.get("violation_found"), Some(&Json::Bool(true)));
        // The builder form wires a sink in one call.
        let cfg2 = ExploreConfig::default().heartbeat(Duration::from_secs(1), std::io::sink());
        assert!(cfg2.budget.heartbeat.is_some());
    }

    #[test]
    fn sequential_worker_stats_are_a_single_entry() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let stats = explore(&cfg, &ExploreConfig::default(), two_proc_bodies, |_| true);
        assert_eq!(stats.worker_runs, vec![stats.runs]);
        assert_eq!(stats.worker_steals, vec![0]);
        let doc = stats.to_json();
        let runs = doc.get("worker_runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs, &[Json::UInt(stats.runs)]);
        let steals = doc.get("worker_steals").and_then(Json::as_arr).unwrap();
        assert_eq!(steals, &[Json::UInt(0)]);
    }

    #[test]
    fn depth_truncation_flagged() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let econfig = ExploreConfig::new().max_runs(1_000).max_depth(1);
        let stats = explore(&cfg, &econfig, two_proc_bodies, |_| true);
        assert!(stats.truncated);
        assert!(stats.exhausted);
        assert_eq!(stats.runs, 2); // only the first step branches
    }

    #[test]
    fn fluent_config_sets_every_knob() {
        let cfg = ExploreConfig::new()
            .max_runs(7)
            .max_depth(3)
            .max_crashes(2)
            .threads(4)
            .shrink(crate::sim::shrink::ShrinkConfig::default())
            .trace_spans(true)
            .profile(true);
        assert_eq!(cfg.budget.max_runs, 7);
        assert_eq!(cfg.budget.max_depth, 3);
        assert_eq!(cfg.budget.max_crashes, 2);
        assert_eq!(cfg.threads, 4);
        assert!(cfg.shrink.is_some());
        assert!(cfg.trace_spans);
        assert!(cfg.profile);
        assert!(cfg.budget.heartbeat.is_none());
        let cleared = cfg.heartbeat_with(None);
        assert!(cleared.budget.heartbeat.is_none());
    }

    /// Reduction-free oracle: count the leaves of the crash-widened
    /// schedule tree directly on a step-count model of the program
    /// (every process takes a fixed number of steps regardless of
    /// values, which holds for `two_proc_bodies`).
    fn crash_tree_oracle(remaining: &mut [u32], crashed: &mut [bool], budget: usize) -> u64 {
        let runnable: Vec<usize> = (0..remaining.len())
            .filter(|&p| !crashed[p] && remaining[p] > 0)
            .collect();
        if runnable.is_empty() {
            return 1;
        }
        let mut total = 0;
        for &p in &runnable {
            remaining[p] -= 1;
            total += crash_tree_oracle(remaining, crashed, budget);
            remaining[p] += 1;
        }
        if budget > 0 {
            for &p in &runnable {
                crashed[p] = true;
                total += crash_tree_oracle(remaining, crashed, budget - 1);
                crashed[p] = false;
            }
        }
        total
    }

    /// The regression test for the crash/sleep-set audit: exhaustive
    /// crash-branching counts must match a reduction-free oracle, and a
    /// crashed process must take no further steps in any run.
    #[test]
    fn crash_branching_matches_reduction_free_oracle() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        for f in 0..=2usize {
            let expected = crash_tree_oracle(&mut [2, 2], &mut [false, false], f);
            let econfig = ExploreConfig::new().max_crashes(f);
            let mut crash_counts = 0u64;
            let stats = explore(&cfg, &econfig, two_proc_bodies, |out| {
                out.assert_no_panics();
                let crashes = out.crashed.iter().filter(|&&c| c).count();
                assert!(crashes <= f, "crash budget exceeded: {crashes} > {f}");
                crash_counts += crashes as u64;
                // A crashed process's trace events all precede its
                // crash point.
                for (p, &at) in out.crashed_at.iter().enumerate() {
                    if let Some(at) = at {
                        assert!(out
                            .trace
                            .events()
                            .iter()
                            .all(|e| e.proc != p || e.step < at));
                    }
                }
                true
            });
            assert!(stats.exhausted, "f={f}");
            assert_eq!(stats.runs, expected, "f={f}");
            assert_eq!(stats.crash_branches, crash_counts, "f={f}");
            if f == 0 {
                assert_eq!(stats.runs, 6);
                assert_eq!(stats.crash_branches, 0);
            }
        }
    }

    /// Sleep-set reduction with crash branching stays sound: the
    /// observable outcome set (results, final memory, crash pattern)
    /// matches plain exploration, in no more runs.
    #[test]
    fn reduced_with_crashes_covers_all_outcomes() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        for f in 1..=2usize {
            let econfig = ExploreConfig::new().max_crashes(f);
            let mut full_set = HashSet::new();
            let full = explore(&cfg, &econfig, two_proc_bodies, |out| {
                full_set.insert((out.results.clone(), out.memory.clone(), out.crashed.clone()));
                true
            });
            let mut red_set = HashSet::new();
            let reduced = explore_reduced(&cfg, &econfig, two_proc_bodies, |out| {
                red_set.insert((out.results.clone(), out.memory.clone(), out.crashed.clone()));
                true
            });
            assert!(full.exhausted && reduced.exhausted, "f={f}");
            assert_eq!(full_set, red_set, "f={f}: outcome sets must match");
            assert!(
                reduced.runs <= full.runs,
                "f={f}: reduction must not add runs ({} vs {})",
                reduced.runs,
                full.runs
            );
        }
    }

    /// A violating run under crash branching shrinks to a minimized
    /// schedule *and* crash pattern, and the shrunk execution
    /// strict-replays with the crash plan applied.
    #[test]
    fn crash_violation_shrinks_schedule_and_crash_pattern() {
        let cfg = SimConfig::base(vec![0u64; 2]);
        let econfig = ExploreConfig::new()
            .max_crashes(1)
            .shrink(crate::sim::shrink::ShrinkConfig::default());
        // "Violation": P0 survives but never saw P1's write AND P1
        // crashed — only reachable through a crash branch.
        let stats = explore(&cfg, &econfig, two_proc_bodies, |out| {
            !(out.crashed[1] && out.results[0] == Some(0))
        });
        assert!(!stats.exhausted);
        let report = stats.violation.as_ref().expect("violation captured");
        assert_eq!(
            report.crashes.len(),
            1,
            "the minimized crash pattern keeps the one necessary crash"
        );
        assert_eq!(report.crashes[0].0, 1);
        // Minimal surviving schedule: P0's write and read only.
        assert_eq!(report.schedule, vec![0, 0]);
        let out = crate::sim::SimBuilder::new(vec![0u64; 2])
            .strategy(crate::sim::strategy::Replay::strict(
                report.schedule.clone(),
            ))
            .fault_plan(crate::sim::fault::FaultPlan::from(report.crashes.clone()))
            .max_steps(report.schedule.len() as u64)
            .run(two_proc_bodies());
        assert!(out.crashed[1]);
        assert_eq!(out.results[0], Some(0));
    }
}
