//! Lightweight span tracing for the forensics layer.
//!
//! The explorer's DFS and the linearizability checker's search are both
//! recursive processes whose cost structure (how many runs, how deep, how
//! much was pruned or memoized) is invisible from their final results.
//! [`SpanRecorder`] captures that structure as a tree of named spans,
//! each carrying a wall-clock duration and a set of named counters, with
//! no dependencies beyond `std::time` and the hand-rolled [`Json`]
//! writer. Span trees are part of the forensics artifact a failing
//! experiment dumps (`--forensics`).

use crate::json::Json;
use std::time::Instant;

/// One completed span: a named interval with counters and child spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's name (e.g. `"explore"`, `"run"`, `"check"`).
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub wall_us: u64,
    /// Named counters bumped while the span was open, in first-bump
    /// order.
    pub counters: Vec<(String, u64)>,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Total number of spans in this subtree (including `self`).
    pub fn total_spans(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::total_spans)
            .sum::<usize>()
    }

    /// Serialise the subtree to JSON:
    /// `{"name":…,"wall_us":…,"counters":{…},"children":[…]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("wall_us", Json::UInt(self.wall_us)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }

    /// Render the subtree as an indented ASCII outline, one span per
    /// line: `name (12µs) counter=3 …`.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    /// Render the subtree in collapsed-stack ("folded") format — one
    /// line per span, `root;child;grandchild <self-µs>` — the input
    /// format of stock flamegraph tooling. Each line's sample value is
    /// the span's *self* time: its wall-clock microseconds minus its
    /// children's (clamped at zero, since children overlap their
    /// parent's interval by construction). Semicolons and whitespace in
    /// span names are replaced with `_` so frames stay unambiguous.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        let mut frames = Vec::new();
        self.fold_into(&mut out, &mut frames);
        out
    }

    fn fold_into(&self, out: &mut String, frames: &mut Vec<String>) {
        let frame: String = self
            .name
            .chars()
            .map(|c| {
                if c == ';' || c.is_whitespace() {
                    '_'
                } else {
                    c
                }
            })
            .collect();
        frames.push(frame);
        let child_us: u64 = self.children.iter().map(|c| c.wall_us).sum();
        let self_us = self.wall_us.saturating_sub(child_us);
        out.push_str(&frames.join(";"));
        out.push_str(&format!(" {self_us}\n"));
        for c in &self.children {
            c.fold_into(out, frames);
        }
        frames.pop();
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} ({}µs)", self.name, self.wall_us));
        for (k, v) in &self.counters {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// An open span under construction.
struct RawSpan {
    name: String,
    started: Instant,
    wall_us: u64,
    counters: Vec<(String, u64)>,
    children: Vec<usize>,
}

/// Records a tree of spans via `enter`/`exit`/`bump` calls.
///
/// The recorder always has an open *root* span (named at construction);
/// [`SpanRecorder::exit`] never closes the root, and
/// [`SpanRecorder::finish`] closes everything and yields the tree.
///
/// ```
/// use apram_model::span::SpanRecorder;
/// let mut rec = SpanRecorder::new("explore");
/// rec.enter("run");
/// rec.bump("steps", 4);
/// rec.exit();
/// rec.bump("runs", 1);
/// let tree = rec.finish();
/// assert_eq!(tree.name, "explore");
/// assert_eq!(tree.children[0].counter("steps"), Some(4));
/// assert_eq!(tree.counter("runs"), Some(1));
/// ```
pub struct SpanRecorder {
    nodes: Vec<RawSpan>,
    /// Indices into `nodes` of the currently-open spans, root first.
    stack: Vec<usize>,
}

impl SpanRecorder {
    /// A recorder with an open root span named `root`.
    pub fn new(root: &str) -> Self {
        SpanRecorder {
            nodes: vec![RawSpan {
                name: root.into(),
                started: Instant::now(),
                wall_us: 0,
                counters: Vec::new(),
                children: Vec::new(),
            }],
            stack: vec![0],
        }
    }

    /// Open a child span of the currently-open span.
    pub fn enter(&mut self, name: &str) {
        let idx = self.nodes.len();
        self.nodes.push(RawSpan {
            name: name.into(),
            started: Instant::now(),
            wall_us: 0,
            counters: Vec::new(),
            children: Vec::new(),
        });
        let parent = *self.stack.last().expect("root is always open");
        self.nodes[parent].children.push(idx);
        self.stack.push(idx);
    }

    /// Close the currently-open span, recording its duration. The root
    /// span cannot be exited; it closes in [`SpanRecorder::finish`].
    pub fn exit(&mut self) {
        if self.stack.len() <= 1 {
            return; // root stays open
        }
        let idx = self.stack.pop().expect("non-empty");
        self.nodes[idx].wall_us = self.nodes[idx].started.elapsed().as_micros() as u64;
    }

    /// Add `delta` to the named counter of the currently-open span.
    pub fn bump(&mut self, counter: &str, delta: u64) {
        let idx = *self.stack.last().expect("root is always open");
        let counters = &mut self.nodes[idx].counters;
        match counters.iter_mut().find(|(k, _)| k == counter) {
            Some((_, v)) => *v += delta,
            None => counters.push((counter.into(), delta)),
        }
    }

    /// Nesting depth of the currently-open span (the root is depth 1).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Close every open span (deepest first) and return the tree.
    pub fn finish(mut self) -> SpanNode {
        while self.stack.len() > 1 {
            self.exit();
        }
        self.nodes[0].wall_us = self.nodes[0].started.elapsed().as_micros() as u64;
        Self::build(&self.nodes, 0)
    }

    fn build(nodes: &[RawSpan], idx: usize) -> SpanNode {
        let raw = &nodes[idx];
        SpanNode {
            name: raw.name.clone(),
            wall_us: raw.wall_us,
            counters: raw.counters.clone(),
            children: raw
                .children
                .iter()
                .map(|&c| Self::build(nodes, c))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_nested_spans_and_counters() {
        let mut rec = SpanRecorder::new("root");
        assert_eq!(rec.depth(), 1);
        rec.bump("top", 1);
        rec.enter("a");
        rec.bump("x", 2);
        rec.bump("x", 3);
        rec.enter("b");
        assert_eq!(rec.depth(), 3);
        rec.exit();
        rec.exit();
        rec.enter("c");
        // `c` left open: finish() closes it.
        let tree = rec.finish();
        assert_eq!(tree.name, "root");
        assert_eq!(tree.counter("top"), Some(1));
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "a");
        assert_eq!(tree.children[0].counter("x"), Some(5));
        assert_eq!(tree.children[0].children[0].name, "b");
        assert_eq!(tree.children[1].name, "c");
        assert_eq!(tree.total_spans(), 4);
    }

    #[test]
    fn root_cannot_be_exited() {
        let mut rec = SpanRecorder::new("root");
        rec.exit();
        rec.exit();
        assert_eq!(rec.depth(), 1);
        rec.enter("child");
        rec.exit();
        let tree = rec.finish();
        assert_eq!(tree.children.len(), 1);
    }

    #[test]
    fn json_and_ascii_rendering() {
        let mut rec = SpanRecorder::new("root");
        rec.enter("run");
        rec.bump("steps", 7);
        rec.exit();
        let tree = rec.finish();
        let json = tree.to_json();
        assert_eq!(json.get("name").and_then(Json::as_str), Some("root"));
        let children = json.get("children").and_then(Json::as_arr).unwrap();
        assert_eq!(
            children[0]
                .get("counters")
                .and_then(|c| c.get("steps"))
                .and_then(Json::as_u64),
            Some(7)
        );
        // The serialised tree re-parses.
        assert!(crate::json::parse(&json.to_compact()).is_ok());
        let art = tree.render_ascii();
        assert!(art.contains("root ("));
        assert!(art.contains("  run ("));
        assert!(art.contains("steps=7"));
    }

    #[test]
    fn folded_output_lists_every_stack_with_self_time() {
        let tree = SpanNode {
            name: "explore all".into(),
            wall_us: 100,
            counters: vec![],
            children: vec![
                SpanNode {
                    name: "run".into(),
                    wall_us: 60,
                    counters: vec![],
                    children: vec![SpanNode {
                        name: "check;deep".into(),
                        wall_us: 10,
                        counters: vec![],
                        children: vec![],
                    }],
                },
                SpanNode {
                    name: "shrink".into(),
                    wall_us: 70, // overlong child: parent self clamps to 0
                    counters: vec![],
                    children: vec![],
                },
            ],
        };
        let folded = tree.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), tree.total_spans());
        assert_eq!(lines[0], "explore_all 0"); // 100 - (60 + 70) < 0 → 0
        assert_eq!(lines[1], "explore_all;run 50");
        assert_eq!(lines[2], "explore_all;run;check_deep 10");
        assert_eq!(lines[3], "explore_all;shrink 70");
        // Every sample value parses as an integer.
        for line in lines {
            let val = line.rsplit(' ').next().unwrap();
            val.parse::<u64>().expect("folded sample value");
        }
    }
}
