//! The per-process shared-memory interface.
//!
//! Algorithms are written once against [`MemCtx`] and run unchanged on the
//! deterministic simulator ([`crate::sim::SimCtx`]) and on native threads
//! ([`crate::native::NativeCtx`]). The trait deliberately exposes nothing
//! but atomic register reads and writes — the *only* communication
//! primitives of the asynchronous PRAM model.

/// A process identifier; processes are numbered `0..n`.
pub type ProcId = usize;

/// The kind of a shared-memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// An atomic register read.
    Read,
    /// An atomic register write.
    Write,
}

/// A process's handle onto the shared memory: an array of atomic
/// registers holding values of type `T`.
///
/// Backends may enforce a single-writer (SWMR) discipline per register and
/// may *crash* the process at any access (the crash unwinds the process
/// body; algorithm code neither observes nor handles it, exactly as a
/// halted process in the model simply stops taking steps).
pub trait MemCtx<T: Clone> {
    /// This process's id.
    fn proc(&self) -> ProcId;

    /// Total number of processes.
    fn n_procs(&self) -> usize;

    /// Number of shared registers.
    fn n_regs(&self) -> usize;

    /// Atomically read register `reg`.
    fn read(&mut self, reg: usize) -> T;

    /// Atomically write `val` to register `reg`.
    fn write(&mut self, reg: usize, val: T);

    /// The backend's estimate of the *point contention* this process
    /// would observe on `reg` right now: the number of processes
    /// (including this one, so always `>= 1`) currently competing for
    /// the register. Backends that cannot observe concurrency report 1;
    /// the native backend samples its per-register in-flight gauge, and
    /// the simulator attributes contention exactly on the scheduler
    /// side instead (see [`crate::contention::ContentionProfiler`]).
    fn point_contention(&self, _reg: usize) -> u64 {
        1
    }
}

/// Register-array layout helpers shared by the algorithms.
///
/// The paper's snapshot uses a matrix `scan[1..n][0..n+1]` of registers;
/// algorithms address it through a flat register array via this mapping.
#[derive(Clone, Copy, Debug)]
pub struct Matrix {
    /// Number of rows (one per process).
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Matrix {
    /// A `rows × cols` register matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols }
    }

    /// Flat register index of `(row, col)`.
    pub fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Total number of registers.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner map for the SWMR discipline: row `r` is writable only by
    /// process `r`.
    pub fn row_owners(&self) -> Vec<ProcId> {
        (0..self.rows)
            .flat_map(|r| std::iter::repeat_n(r, self.cols))
            .collect()
    }
}

/// A typed view of a [`Matrix`] region of the register array.
///
/// Call sites previously computed `base + matrix.idx(row, col)` by hand at
/// every access; the view owns the base offset and the shape, so algorithm
/// code reads and writes `(row, col)` cells directly and cannot mix up
/// offsets between objects sharing one register array.
///
/// The view is `Copy` metadata only — it holds no reference to the memory,
/// so one view works across any number of [`MemCtx`] handles.
#[derive(Clone, Copy, Debug)]
pub struct MatrixView<T> {
    matrix: Matrix,
    base: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> MatrixView<T> {
    /// View of `matrix` starting at flat register index `base`.
    pub fn new(matrix: Matrix, base: usize) -> Self {
        MatrixView {
            matrix,
            base,
            _marker: std::marker::PhantomData,
        }
    }

    /// View of a fresh `rows × cols` matrix at offset 0.
    pub fn root(rows: usize, cols: usize) -> Self {
        Self::new(Matrix::new(rows, cols), 0)
    }

    /// The underlying shape.
    pub fn matrix(&self) -> Matrix {
        self.matrix
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.matrix.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.matrix.cols
    }

    /// Flat register index of `(row, col)` — for owner maps and layout
    /// checks; accesses should go through the cell operations.
    pub fn reg(&self, row: usize, col: usize) -> usize {
        self.base + self.matrix.idx(row, col)
    }

    /// Registers one past the view's last cell (where the next object in
    /// the same array would start).
    pub fn end(&self) -> usize {
        self.base + self.matrix.len()
    }

    /// SWMR owner map for this view's registers: row `r` is writable only
    /// by process `r` (see [`Matrix::row_owners`]). Only meaningful for
    /// views at base 0 covering the whole array.
    pub fn row_owners(&self) -> Vec<ProcId> {
        self.matrix.row_owners()
    }
}

impl<T: Clone> MatrixView<T> {
    /// Atomically read cell `(row, col)`.
    pub fn read_cell<C: MemCtx<T>>(&self, ctx: &mut C, row: usize, col: usize) -> T {
        ctx.read(self.reg(row, col))
    }

    /// Atomically write cell `(row, col)`.
    pub fn write_cell<C: MemCtx<T>>(&self, ctx: &mut C, row: usize, col: usize, val: T) {
        ctx.write(self.reg(row, col), val)
    }

    /// Read row `row` left to right (one atomic read per cell — *not* an
    /// atomic snapshot of the row).
    pub fn collect_row<C: MemCtx<T>>(&self, ctx: &mut C, row: usize) -> Vec<T> {
        (0..self.matrix.cols)
            .map(|col| self.read_cell(ctx, row, col))
            .collect()
    }

    /// Read column `col` top to bottom (one atomic read per cell).
    pub fn collect_col<C: MemCtx<T>>(&self, ctx: &mut C, col: usize) -> Vec<T> {
        (0..self.matrix.rows)
            .map(|row| self.read_cell(ctx, row, col))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_indexing_is_row_major() {
        let m = Matrix::new(3, 4);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert_eq!(m.idx(0, 0), 0);
        assert_eq!(m.idx(1, 0), 4);
        assert_eq!(m.idx(2, 3), 11);
    }

    #[test]
    fn row_owners_assign_each_row_to_its_process() {
        let m = Matrix::new(2, 3);
        assert_eq!(m.row_owners(), vec![0, 0, 0, 1, 1, 1]);
    }

    /// In-memory MemCtx over a plain Vec, for exercising MatrixView.
    struct VecCtx {
        regs: Vec<u32>,
    }

    impl MemCtx<u32> for VecCtx {
        fn proc(&self) -> ProcId {
            0
        }
        fn n_procs(&self) -> usize {
            1
        }
        fn n_regs(&self) -> usize {
            self.regs.len()
        }
        fn read(&mut self, reg: usize) -> u32 {
            self.regs[reg]
        }
        fn write(&mut self, reg: usize, val: u32) {
            self.regs[reg] = val;
        }
    }

    #[test]
    fn view_addresses_cells_relative_to_base() {
        let view = MatrixView::<u32>::new(Matrix::new(2, 3), 4);
        let mut ctx = VecCtx { regs: vec![0; 10] };
        view.write_cell(&mut ctx, 1, 2, 9);
        assert_eq!(ctx.regs[4 + 5], 9);
        assert_eq!(view.read_cell(&mut ctx, 1, 2), 9);
        assert_eq!(view.reg(0, 0), 4);
        assert_eq!(view.end(), 10);
        assert_eq!(view.rows(), 2);
        assert_eq!(view.cols(), 3);
    }

    #[test]
    fn view_collects_rows_and_cols() {
        let view = MatrixView::<u32>::root(2, 3);
        let mut ctx = VecCtx {
            regs: vec![1, 2, 3, 4, 5, 6],
        };
        assert_eq!(view.collect_row(&mut ctx, 0), vec![1, 2, 3]);
        assert_eq!(view.collect_row(&mut ctx, 1), vec![4, 5, 6]);
        assert_eq!(view.collect_col(&mut ctx, 1), vec![2, 5]);
        assert_eq!(view.row_owners(), vec![0, 0, 0, 1, 1, 1]);
    }
}
