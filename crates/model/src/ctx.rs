//! The per-process shared-memory interface.
//!
//! Algorithms are written once against [`MemCtx`] and run unchanged on the
//! deterministic simulator ([`crate::sim::SimCtx`]) and on native threads
//! ([`crate::native::NativeCtx`]). The trait deliberately exposes nothing
//! but atomic register reads and writes — the *only* communication
//! primitives of the asynchronous PRAM model.

/// A process identifier; processes are numbered `0..n`.
pub type ProcId = usize;

/// The kind of a shared-memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// An atomic register read.
    Read,
    /// An atomic register write.
    Write,
}

/// A process's handle onto the shared memory: an array of atomic
/// registers holding values of type `T`.
///
/// Backends may enforce a single-writer (SWMR) discipline per register and
/// may *crash* the process at any access (the crash unwinds the process
/// body; algorithm code neither observes nor handles it, exactly as a
/// halted process in the model simply stops taking steps).
pub trait MemCtx<T: Clone> {
    /// This process's id.
    fn proc(&self) -> ProcId;

    /// Total number of processes.
    fn n_procs(&self) -> usize;

    /// Number of shared registers.
    fn n_regs(&self) -> usize;

    /// Atomically read register `reg`.
    fn read(&mut self, reg: usize) -> T;

    /// Atomically write `val` to register `reg`.
    fn write(&mut self, reg: usize, val: T);
}

/// Register-array layout helpers shared by the algorithms.
///
/// The paper's snapshot uses a matrix `scan[1..n][0..n+1]` of registers;
/// algorithms address it through a flat register array via this mapping.
#[derive(Clone, Copy, Debug)]
pub struct Matrix {
    /// Number of rows (one per process).
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Matrix {
    /// A `rows × cols` register matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols }
    }

    /// Flat register index of `(row, col)`.
    pub fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Total number of registers.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner map for the SWMR discipline: row `r` is writable only by
    /// process `r`.
    pub fn row_owners(&self) -> Vec<ProcId> {
        (0..self.rows)
            .flat_map(|r| std::iter::repeat_n(r, self.cols))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_indexing_is_row_major() {
        let m = Matrix::new(3, 4);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert_eq!(m.idx(0, 0), 0);
        assert_eq!(m.idx(1, 0), 4);
        assert_eq!(m.idx(2, 3), 11);
    }

    #[test]
    fn row_owners_assign_each_row_to_its_process() {
        let m = Matrix::new(2, 3);
        assert_eq!(m.row_owners(), vec![0, 0, 0, 1, 1, 1]);
    }
}
