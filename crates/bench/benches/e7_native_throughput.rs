//! E7 — native-thread wall-clock comparison.
//!
//! The paper makes no wall-clock claims (its model counts register
//! accesses), so this bench records the *shape*: who wins and how the
//! algorithms scale with thread count.
//!
//! * snapshot objects: Aspnes–Herlihy scan vs double-collect vs mutex;
//! * counters: direct (lattice) vs universal (Figure 4) vs mutex.
//!
//! Workload: every thread alternates one update and one full snapshot
//! (or inc and read for counters).

use apram_model::NativeMemory;
use apram_objects::{DirectCounter, UniversalCounter};
use apram_snapshot::afek::AfekSnapshot;
use apram_snapshot::collect::{CollectArray, DoubleCollect};
use apram_snapshot::lock::LockSnapshot;
use apram_snapshot::Snapshot;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One timed scenario: `threads` threads, per-thread state from
/// `setup(t)`, then `ops` iterations of `op`. Setup is excluded from the
/// measurement by a barrier.
fn timed_run<S, Setup, Op>(threads: usize, ops: usize, setup: Setup, op: Op) -> Duration
where
    S: Send,
    Setup: Fn(usize) -> S + Sync,
    Op: Fn(&mut S, usize) + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let setup = &setup;
            let op = &op;
            s.spawn(move || {
                let mut state = setup(t);
                barrier.wait();
                for k in 0..ops {
                    op(&mut state, k);
                }
            });
        }
        barrier.wait();
        Instant::now()
    });
    start.elapsed()
}

fn bench_snapshots(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_snapshot");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    const OPS: usize = 60;
    for &threads in &[2usize, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS * 2) as u64));
        group.bench_with_input(
            BenchmarkId::new("aspnes_herlihy_scan", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let snap = Snapshot::new(threads);
                        let mem = NativeMemory::new(threads, snap.registers::<u64>());
                        total += timed_run(
                            threads,
                            OPS,
                            |t| (snap.handle::<u64>(), mem.ctx(t)),
                            |(h, ctx), k| {
                                h.update(ctx, k as u64);
                                let _ = h.snap(ctx);
                            },
                        );
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("afek_et_al", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let snap = AfekSnapshot::new(threads);
                        let mem = NativeMemory::new(threads, snap.registers::<u64>());
                        total += timed_run(
                            threads,
                            OPS,
                            |t| mem.ctx(t),
                            |ctx, k| {
                                snap.update(ctx, k as u64);
                                let _ = snap.snap(ctx);
                            },
                        );
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("double_collect", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let arr = CollectArray::new(threads);
                        let mem = NativeMemory::new(threads, arr.registers::<u64>());
                        total += timed_run(
                            threads,
                            OPS,
                            |t| (DoubleCollect::new(arr), mem.ctx(t)),
                            |(h, ctx), k| {
                                h.update(ctx, k as u64);
                                let _ = h.snap(ctx);
                            },
                        );
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let obj: LockSnapshot<u64> = LockSnapshot::new(threads);
                        total += timed_run(
                            threads,
                            OPS,
                            |t| (obj.clone(), t),
                            |(obj, t), k| {
                                obj.update(*t, k as u64);
                                let _ = obj.snap();
                            },
                        );
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_counter");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    // Small op count: the universal counter's replay work grows with the
    // total history (the paper's acknowledged overhead).
    const OPS: usize = 15;
    for &threads in &[2usize, 4] {
        group.throughput(Throughput::Elements((threads * OPS * 2) as u64));
        group.bench_with_input(
            BenchmarkId::new("direct_lattice", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cnt = DirectCounter::new(threads);
                        let mem = NativeMemory::new(threads, cnt.registers());
                        total += timed_run(
                            threads,
                            OPS,
                            |t| (cnt.handle(), mem.ctx(t)),
                            |(h, ctx), _| {
                                h.inc(ctx, 1);
                                let _ = h.read(ctx);
                            },
                        );
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("universal_figure4", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cnt = UniversalCounter::new(threads);
                        let mem = NativeMemory::new(threads, cnt.registers());
                        total += timed_run(
                            threads,
                            OPS,
                            |t| (cnt.handle(), mem.ctx(t)),
                            |(h, ctx), _| {
                                h.inc(ctx, 1);
                                let _ = h.read(ctx);
                            },
                        );
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let obj = std::sync::Arc::new(parking_lot_counter::Counter::new());
                        total += timed_run(
                            threads,
                            OPS,
                            |_| obj.clone(),
                            |obj, _| {
                                obj.inc(1);
                                let _ = obj.read();
                            },
                        );
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

/// A minimal mutex counter baseline (kept local to the bench).
mod parking_lot_counter {
    use std::sync::Mutex;

    pub struct Counter(Mutex<i64>);

    impl Counter {
        pub fn new() -> Self {
            Counter(Mutex::new(0))
        }

        pub fn inc(&self, by: i64) {
            *self.0.lock().unwrap() += by;
        }

        pub fn read(&self) -> i64 {
            *self.0.lock().unwrap()
        }
    }
}

criterion_group!(benches, bench_snapshots, bench_counters);
criterion_main!(benches);
