//! E1 (wall-clock companion) — approximate agreement cost as Δ/ε and n
//! grow. The step-count table comes from `experiments run e1`; this bench
//! tracks the wall-clock of complete round-robin executions of the state
//! machine, whose growth must be ~log₂(Δ/ε) (Theorem 5) and ~n² per
//! round (n processes × n reads per scan).

use apram_agreement::machine::AgreementMachine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_delta_over_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_delta_over_eps");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for k in [4u32, 8, 12, 16] {
        let eps = 2f64.powi(-(k as i32));
        group.bench_with_input(
            BenchmarkId::new("n2_rr", format!("2^{k}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let mut m = AgreementMachine::new(eps, vec![0.0, 1.0]);
                    m.run_all_round_robin(10_000_000)
                });
            },
        );
    }
    group.finish();
}

fn bench_processes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_processes");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 8, 16] {
        let inputs: Vec<f64> = (0..n).map(|p| p as f64 / (n - 1) as f64).collect();
        group.bench_with_input(BenchmarkId::new("eps_2e-8_rr", n), &inputs, |b, inputs| {
            b.iter(|| {
                let mut m = AgreementMachine::new(2f64.powi(-8), inputs.clone());
                m.run_all_round_robin(10_000_000)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta_over_eps, bench_processes);
criterion_main!(benches);
