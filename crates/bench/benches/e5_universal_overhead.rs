//! E5 (wall-clock companion) — the universal construction's local
//! overhead: the cost of one `execute` as the visible history grows
//! (replay + lingraph work, the paper's "quite a bit of overhead"), and
//! the direct-counter comparison at the same history length.

use apram_model::NativeMemory;
use apram_objects::{DirectCounter, UniversalCounter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_history_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_history_growth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for hist in [8usize, 32, 128, 256] {
        group.bench_with_input(
            BenchmarkId::new("universal_read_after_k_ops", hist),
            &hist,
            |b, &hist| {
                // Pre-build a history of `hist` increments, then measure
                // one *uncached* read: snapshot + full replay (the
                // paper's acknowledged per-operation graph overhead).
                let uni = apram_core::Universal::new(1, apram_core::CounterSpec);
                let mem = NativeMemory::new(1, uni.registers());
                let mut h = uni.handle();
                let mut ctx = mem.ctx(0);
                for _ in 0..hist {
                    h.execute(&mut ctx, apram_core::CounterOp::Inc(1));
                }
                b.iter(|| {
                    h.clear_replay_memo();
                    h.execute_unpublished(&mut ctx, apram_core::CounterOp::Read)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("universal_read_memoized", hist),
            &hist,
            |b, &hist| {
                // Same, with the view-signature memo warm: repeated reads
                // against an unchanged world cost O(n), independent of k.
                let uni = apram_core::Universal::new(1, apram_core::CounterSpec);
                let mem = NativeMemory::new(1, uni.registers());
                let mut h = uni.handle();
                let mut ctx = mem.ctx(0);
                for _ in 0..hist {
                    h.execute(&mut ctx, apram_core::CounterOp::Inc(1));
                }
                b.iter(|| h.execute_unpublished(&mut ctx, apram_core::CounterOp::Read));
            },
        );
    }
    for hist in [8usize, 32, 128, 256] {
        group.bench_with_input(
            BenchmarkId::new("direct_read_after_k_ops", hist),
            &hist,
            |b, &hist| {
                let cnt = DirectCounter::new(1);
                let mem = NativeMemory::new(1, cnt.registers());
                let mut h = cnt.handle();
                let mut ctx = mem.ctx(0);
                for _ in 0..hist {
                    h.inc(&mut ctx, 1);
                }
                b.iter(|| h.read(&mut ctx));
            },
        );
    }
    group.finish();
}

fn bench_process_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_process_count");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    // Single-threaded probe of the O(n²) register traffic: one read on
    // an n-process object with a small fixed history (no contention, so
    // the curve is the pure per-operation cost — it must grow ~n²).
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("universal_read", n), &n, |b, &n| {
            let cnt = UniversalCounter::new(n);
            let mem = NativeMemory::new(n, cnt.registers());
            let mut h = cnt.handle();
            let mut ctx = mem.ctx(0);
            for _ in 0..4 {
                h.inc(&mut ctx, 1);
            }
            b.iter(|| h.read_unpublished(&mut ctx));
        });
        group.bench_with_input(BenchmarkId::new("direct_read", n), &n, |b, &n| {
            let cnt = DirectCounter::new(n);
            let mem = NativeMemory::new(n, cnt.registers());
            let mut h = cnt.handle();
            let mut ctx = mem.ctx(0);
            for _ in 0..4 {
                h.inc(&mut ctx, 1);
            }
            b.iter(|| h.read(&mut ctx));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_history_growth, bench_process_count);
criterion_main!(benches);
