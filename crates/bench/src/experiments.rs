#![allow(clippy::type_complexity)]

//! The experiment implementations (E1–E6, E8, E9). Wall-clock E7 lives
//! in `benches/`.

use apram_agreement::ablation::{explore_machine, random_search};
use apram_agreement::adversary::{lemma6_bound, run_adversary};
use apram_agreement::hierarchy::{hierarchy_row, theorem5_bound, unbounded_growth};
use apram_agreement::machine::AgreementMachine;
use apram_agreement::proto::{ScanMode, Variant};
use apram_core::{CounterOp, Universal};
use apram_history::check::{check_linearizable, check_linearizable_traced, CheckerConfig};
use apram_history::{
    check_histories_parallel, CheckOutcome, FailureExplanation, History, Ops, Recorder, Violation,
};
use apram_lattice::Tagged;
use apram_model::sim::explore::{ExploreConfig, ExploreStats};
use apram_model::sim::shrink::ShrinkConfig;
use apram_model::sim::strategy::Replay;
use apram_model::sim::{
    Budgeted, Certificate, CertifyConfig, ProcBody, SimBuilder, SimCtx, SimOutcome,
};
use apram_model::{resolve_threads, Heartbeat, Json, MemCtx, SpanNode, SpanRecorder};
use apram_objects::simspec::{
    e10_afek_bodies, e10_collect_bodies, e10_depth, e10_pair, e10_snapshot_bodies, lock_pair,
};
use apram_snapshot::afek::{AfekReg, AfekSnapshot};
use apram_snapshot::collect::{naive_collect, CollectArray, DoubleCollect};
use apram_snapshot::lock::SimLockSnapshot;
use apram_snapshot::snapshot::{SnapOp, SnapResp, SnapshotSpec};
use apram_snapshot::{ScanHandle, ScanObject, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Shared experiment options, fed by the CLI's `--seed` / `--quick` /
/// `--threads` flags so every experiment honors the same knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpOpts {
    /// Base seed mixed into every sampled schedule.
    pub seed: u64,
    /// Shrink grids and sample counts for a fast smoke run.
    pub quick: bool,
    /// Worker threads for parallel exploration and history checking
    /// (0 = all available parallelism).
    pub threads: usize,
}

impl ExpOpts {
    /// Options for a given base seed (full-size grids).
    pub fn with_seed(seed: u64) -> Self {
        ExpOpts {
            seed,
            quick: false,
            threads: 0,
        }
    }
}

/// E1 — Theorem 5 upper bound: measured worst per-process steps of the
/// approximate agreement protocol vs the analytic bound.
#[derive(Clone, Debug)]
pub struct E1Row {
    /// Number of processes.
    pub n: usize,
    /// Input range over ε.
    pub delta_over_eps: f64,
    /// Worst per-process step count over the sampled schedules.
    pub measured_worst: u64,
    /// Theorem 5 analytic bound (2n+1)·log₂(Δ/ε)+O(n).
    pub bound: u64,
    /// measured / log₂(Δ/ε) — should stay ~linear in n.
    pub per_round: f64,
}

/// Worst per-process machine steps over random + round-robin schedules
/// with `n` equally spaced inputs in \[0, 1\].
pub fn measured_worst_steps_n(n: usize, eps: f64, samples: u64, seed: u64) -> u64 {
    let inputs: Vec<f64> = (0..n).map(|p| p as f64 / (n - 1).max(1) as f64).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst = 0u64;
    for s in 0..=samples {
        // Collect mode: every machine step is one register access — the
        // currency of Theorem 5's (2n+1)·log₂(Δ/ε) + O(n) claim.
        let mut m =
            AgreementMachine::with_config(eps, inputs.clone(), Variant::Full, ScanMode::Collect);
        if s == 0 {
            m.run_all_round_robin(100_000_000);
        } else {
            while (0..n).any(|p| !m.is_done(p)) {
                let live: Vec<usize> = (0..n).filter(|&p| !m.is_done(p)).collect();
                let p = live[rng.gen_range(0..live.len())];
                m.step(p);
            }
        }
        for p in 0..n {
            worst = worst.max(m.steps_taken(p));
        }
    }
    worst
}

/// Run E1 over the standard grid (shrunk under `--quick`).
pub fn e1_rows(opts: &ExpOpts) -> Vec<E1Row> {
    let (ns, ks, samples): (&[usize], &[u32], u64) = if opts.quick {
        (&[2, 4], &[2, 6], 5)
    } else {
        (&[2, 4, 8, 16], &[2, 6, 10, 14], 20)
    };
    let mut rows = Vec::new();
    for &n in ns {
        for &k in ks {
            let doe = 2f64.powi(k as i32);
            let eps = 1.0 / doe;
            let measured =
                measured_worst_steps_n(n, eps, samples, opts.seed + 0xE1 + n as u64 + k as u64);
            rows.push(E1Row {
                n,
                delta_over_eps: doe,
                measured_worst: measured,
                bound: theorem5_bound(n, doe),
                per_round: measured as f64 / doe.log2(),
            });
        }
    }
    rows
}

/// E2 — Lemma 6 lower bound: what the adversary forces vs ⌊log₃(Δ/ε)⌋.
#[derive(Clone, Debug)]
pub struct E2Row {
    /// Hierarchy level (Δ/ε = 3^k).
    pub k: u32,
    /// The analytic bound ⌊log₃(Δ/ε)⌋.
    pub bound: u64,
    /// Confrontations the adversary forced.
    pub forced_confrontations: u64,
    /// Worst per-process steps under the adversary.
    pub forced_steps: u64,
    /// Final output gap (must be < ε = 3^−k).
    pub final_gap: f64,
}

/// Run E2 for k = 1..=max_k.
pub fn e2_rows(max_k: u32) -> Vec<E2Row> {
    (1..=max_k)
        .map(|k| {
            let eps = 3f64.powi(-(k as i32));
            let rep = run_adversary(eps, 0.0, 1.0, 100_000_000);
            E2Row {
                k,
                bound: lemma6_bound(1.0, eps),
                forced_confrontations: rep.confrontations,
                forced_steps: rep.max_steps(),
                final_gap: rep.final_gap,
            }
        })
        .collect()
}

/// E3 — the Theorem 7 hierarchy table plus Theorem 8 growth.
pub fn e3_hierarchy(max_k: u32) -> Vec<apram_agreement::hierarchy::HierarchyRow> {
    (1..=max_k).map(|k| hierarchy_row(k, 15)).collect()
}

/// E3b — Theorem 8: forced steps as Δ grows with ε = 1.
pub fn e3_unbounded() -> Vec<(f64, u64)> {
    unbounded_growth(&[3.0, 9.0, 27.0, 81.0, 243.0, 2187.0, 19683.0])
}

/// E4 — §6.2 operation counts of one `Scan`, literal and optimized.
#[derive(Clone, Debug)]
pub struct E4Row {
    /// Number of processes.
    pub n: usize,
    /// Measured (reads, writes) of the literal Figure 5 scan.
    pub literal: (u64, u64),
    /// Paper's claim: (n²+n+1, n+2).
    pub literal_claim: (u64, u64),
    /// Measured (reads, writes) of the §6.2-optimized scan.
    pub optimized: (u64, u64),
    /// Paper's claim: (n²−1, n+1).
    pub optimized_claim: (u64, u64),
}

/// Run E4 over a range of n.
pub fn e4_rows(ns: &[usize]) -> Vec<E4Row> {
    ns.iter()
        .map(|&n| {
            let obj = ScanObject::new(n);
            // Round-robin (the builder default) makes the counts exact
            // and schedule-independent for this object.
            let mut sim =
                SimBuilder::new(obj.registers::<apram_lattice::MaxU64>()).owners(obj.owners());
            let lit = sim.run_symmetric(n, move |ctx| obj.scan(ctx, apram_lattice::MaxU64::new(1)));
            let opt = sim.run_symmetric(n, move |ctx| {
                let mut h = ScanHandle::new(obj);
                h.scan(ctx, apram_lattice::MaxU64::new(1))
            });
            lit.assert_no_panics();
            opt.assert_no_panics();
            E4Row {
                n,
                literal: (lit.counts[0].reads, lit.counts[0].writes),
                literal_claim: ((n * n + n + 1) as u64, (n + 2) as u64),
                optimized: (opt.counts[0].reads, opt.counts[0].writes),
                optimized_claim: ((n * n - 1) as u64, (n + 1) as u64),
            }
        })
        .collect()
}

/// E4b — the Aspnes–Herlihy lattice scan vs the Afek et al. snapshot
/// (paper §2: "time complexity comparable to ours"), measured.
#[derive(Clone, Debug)]
pub struct E4bRow {
    /// Number of processes.
    pub n: usize,
    /// Lattice scan reads per operation (schedule-independent, §6.2
    /// optimized form): n²−1.
    pub lattice_reads: u64,
    /// Afek snapshot reads for a quiet (uncontended) snap: 2n.
    pub afek_quiet_reads: u64,
    /// Afek snapshot reads for a snap under an interposing writer
    /// (forces failed double collects until a view is borrowed).
    pub afek_contended_reads: u64,
}

/// Run E4b over a range of n.
pub fn e4b_rows(ns: &[usize]) -> Vec<E4bRow> {
    use apram_model::sim::strategy::{BurstAdversary, PrioritizeLowest};
    ns.iter()
        .map(|&n| {
            let snap = AfekSnapshot::new(n);
            // Quiet: the scanner runs alone.
            let quiet = SimBuilder::new(snap.registers::<u64>())
                .owners(snap.owners())
                .strategy(PrioritizeLowest)
                .run_symmetric(1, move |ctx| snap.snap::<u64, _>(ctx));
            quiet.assert_no_panics();
            // Contended: the writer gets a long burst between scanner
            // steps (an update embeds a scan, so it needs 2n+2 steps per
            // write); every scanner double collect then observes a moved
            // sequence number until a view is borrowed.
            let bodies: Vec<ProcBody<'static, AfekReg<u64>, ()>> = vec![
                Box::new(move |ctx: &mut SimCtx<AfekReg<u64>>| {
                    let _ = snap.snap::<u64, _>(ctx);
                }),
                Box::new(move |ctx: &mut SimCtx<AfekReg<u64>>| {
                    for v in 0..10_000u64 {
                        snap.update(ctx, v);
                    }
                }),
            ];
            let contended = SimBuilder::new(snap.registers::<u64>())
                .owners(snap.owners())
                .max_steps(10_000_000)
                .strategy(BurstAdversary::new(1, 2 * n as u64 + 2))
                .run(bodies);
            contended.assert_no_panics();
            E4bRow {
                n,
                lattice_reads: (n * n - 1) as u64,
                afek_quiet_reads: quiet.counts[0].reads,
                afek_contended_reads: contended.counts[0].reads,
            }
        })
        .collect()
}

/// E5 — universal construction synchronization overhead per operation.
#[derive(Clone, Debug)]
pub struct E5Row {
    /// Number of processes.
    pub n: usize,
    /// Measured shared reads per `execute`.
    pub reads: u64,
    /// Measured shared writes per `execute`.
    pub writes: u64,
    /// Expected: 2·(n²−1) reads (two optimized scans: snap + update).
    pub reads_claim: u64,
    /// Expected: 2·(n+1) writes.
    pub writes_claim: u64,
}

/// Run E5 over a range of n.
pub fn e5_rows(ns: &[usize]) -> Vec<E5Row> {
    ns.iter()
        .map(|&n| {
            let uni = Universal::new(n, apram_core::CounterSpec);
            let uni2 = uni.clone();
            let out = SimBuilder::new(uni.registers())
                .owners(uni.owners())
                .run_symmetric(n, move |ctx| {
                    let mut h = uni2.handle();
                    h.execute(ctx, CounterOp::Inc(1));
                });
            out.assert_no_panics();
            E5Row {
                n,
                reads: out.counts[0].reads,
                writes: out.counts[0].writes,
                reads_claim: 2 * (n * n - 1) as u64,
                writes_claim: 2 * (n as u64 + 1),
            }
        })
        .collect()
}

/// E6 — linearizability verification summary. Each object carries the
/// full [`ExploreStats`] of its exploration, so the table can report
/// schedules explored alongside the search overheads (replay ratio,
/// deepest branch point).
#[derive(Clone, Debug)]
pub struct E6Summary {
    /// Exploration stats for the snapshot object (2 procs).
    pub snapshot: ExploreStats,
    /// Exploration stats for the universal counter.
    pub universal: ExploreStats,
    /// Exploration stats for the Afek et al. snapshot.
    pub afek: ExploreStats,
    /// Exploration stats for the MW register (full depth).
    pub mwreg: ExploreStats,
    /// Histories checked in total (all linearizable, or this function
    /// panics).
    pub histories_checked: u64,
}

impl E6Summary {
    /// `(name, stats)` rows in table order.
    pub fn per_object(&self) -> [(&'static str, &ExploreStats); 4] {
        [
            ("atomic snapshot (2 procs)", &self.snapshot),
            ("universal counter (2 procs)", &self.universal),
            ("Afek et al. snapshot (2 procs)", &self.afek),
            ("MW register (2 procs, full depth)", &self.mwreg),
        ]
    }
}

/// The shared per-object history sink of the E6 pipeline: workers push
/// the history of every explored run, and the batch is linearizability-
/// checked in parallel once the exploration drains.
type HistorySink<O, R> = Arc<Mutex<Vec<History<O, R>>>>;

/// Drain `sink` and check every collected history in parallel, panicking
/// with `label` on the first non-linearizable one. Returns how many
/// histories were checked.
fn drain_and_check<Sp>(
    spec: &Sp,
    sink: &HistorySink<Sp::Op, Sp::Resp>,
    threads: usize,
    label: &str,
) -> u64
where
    Sp: apram_history::NondetSpec + Sync,
    Sp::State: std::hash::Hash + Eq,
    Sp::Op: Send + Sync,
    Sp::Resp: Send + Sync,
{
    let batch = std::mem::take(&mut *sink.lock().unwrap());
    let outcomes = check_histories_parallel(spec, &batch, &CheckerConfig::default(), threads);
    assert!(outcomes.iter().all(|o| o.is_ok()), "{label}");
    batch.len() as u64
}

/// Run the E6 exhaustive checks (smaller than the test-suite versions;
/// the suite is the authority, this reports the counts for the table).
/// Exploration fans out across `opts.threads` workers, each with a
/// private recorder cell feeding a shared history sink; the collected
/// batch is then checked with [`check_histories_parallel`].
pub fn e6_summary(opts: &ExpOpts) -> E6Summary {
    e6_summary_with(opts, None)
}

/// [`e6_summary`] with an optional progress [`Heartbeat`] installed on
/// every exploration: all four objects stream periodic JSONL beats (and
/// a final beat each) into the heartbeat's shared sink — the artifact
/// the CLI's `--telemetry` flag writes as `heartbeat.jsonl`.
pub fn e6_summary_with(opts: &ExpOpts, heartbeat: Option<Heartbeat>) -> E6Summary {
    let budget = if opts.quick { 2_000 } else { 20_000 };
    let threads = opts.threads;
    let mut histories = 0u64;

    // Snapshot object, 2 processes, update+snap each, truncated depth.
    let snap = Snapshot::new(2);
    let spec = SnapshotSpec::<u32>::new(2);
    let sink: HistorySink<SnapOp<u32>, SnapResp<u32>> = Arc::new(Mutex::new(Vec::new()));
    let snap_stats = SimBuilder::new(snap.registers::<u32>())
        .owners(snap.owners())
        .explore_parallel(
            &ExploreConfig::new()
                .max_runs(budget)
                .max_depth(12)
                .heartbeat_with(heartbeat.clone()),
            threads,
            |_worker| {
                let cell: Arc<Mutex<Option<Recorder<SnapOp<u32>, SnapResp<u32>>>>> =
                    Arc::new(Mutex::new(None));
                let fcell = Arc::clone(&cell);
                let sink = Arc::clone(&sink);
                let make = move || {
                    let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
                    *fcell.lock().unwrap() = Some(rec.clone());
                    (0..2usize)
                        .map(|p| {
                            let rec = rec.clone();
                            Box::new(move |ctx: &mut SimCtx<apram_lattice::TaggedVec<u32>>| {
                                let mut h = snap.handle::<u32>();
                                rec.record(p, SnapOp::Update(p as u32 + 1), || {
                                    h.update(ctx, p as u32 + 1);
                                    SnapResp::Ack
                                });
                                rec.invoke(p, SnapOp::Snap);
                                let view = h.snap(ctx);
                                rec.respond(p, SnapResp::View(view));
                            })
                                as ProcBody<'static, apram_lattice::TaggedVec<u32>, ()>
                        })
                        .collect::<Vec<_>>()
                };
                let visit = move |out: &SimOutcome<apram_lattice::TaggedVec<u32>, ()>| {
                    out.assert_no_panics();
                    let hist = cell.lock().unwrap().take().unwrap().snapshot();
                    sink.lock().unwrap().push(hist);
                    true
                };
                (make, visit)
            },
        );
    histories += drain_and_check(&spec, &sink, threads, "E6: snapshot violation");

    // Universal counter, 2 processes, one op each + read, truncated.
    let uni = Universal::new(2, apram_core::CounterSpec);
    let uni_sim = SimBuilder::new(uni.registers()).owners(uni.owners());
    let sink2: HistorySink<CounterOp, apram_core::CounterResp> = Arc::new(Mutex::new(Vec::new()));
    let uni_stats = uni_sim.explore_parallel(
        &ExploreConfig::new()
            .max_runs(budget)
            .max_depth(10)
            .heartbeat_with(heartbeat.clone()),
        threads,
        |_worker| {
            let cell: Arc<Mutex<Option<Recorder<CounterOp, apram_core::CounterResp>>>> =
                Arc::new(Mutex::new(None));
            let fcell = Arc::clone(&cell);
            let sink = Arc::clone(&sink2);
            let uni = uni.clone();
            let make = move || {
                let rec: Recorder<CounterOp, apram_core::CounterResp> = Recorder::new();
                *fcell.lock().unwrap() = Some(rec.clone());
                (0..2usize)
                    .map(|p| {
                        let rec = rec.clone();
                        let mut h = uni.handle();
                        let op = if p == 0 {
                            CounterOp::Inc(1)
                        } else {
                            CounterOp::Reset(5)
                        };
                        Box::new(
                            move |ctx: &mut SimCtx<
                                apram_core::universal::UniversalReg<apram_core::CounterSpec>,
                            >| {
                                rec.invoke(p, op);
                                let r = h.execute(ctx, op);
                                rec.respond(p, r);
                                rec.invoke(p, CounterOp::Read);
                                let r = h.execute(ctx, CounterOp::Read);
                                rec.respond(p, r);
                            },
                        ) as ProcBody<'static, _, ()>
                    })
                    .collect::<Vec<_>>()
            };
            let visit = move |out: &SimOutcome<
                apram_core::universal::UniversalReg<apram_core::CounterSpec>,
                (),
            >| {
                out.assert_no_panics();
                let hist = cell.lock().unwrap().take().unwrap().snapshot();
                sink.lock().unwrap().push(hist);
                true
            };
            (make, visit)
        },
    );
    histories += drain_and_check(
        &apram_core::CounterSpec,
        &sink2,
        threads,
        "E6: universal counter violation",
    );

    // Afek et al. snapshot, 2 processes.
    let asnap = AfekSnapshot::new(2);
    let spec2 = SnapshotSpec::<u32>::new(2);
    let sink3: HistorySink<SnapOp<u32>, SnapResp<u32>> = Arc::new(Mutex::new(Vec::new()));
    let afek_stats = SimBuilder::new(asnap.registers::<u32>())
        .owners(asnap.owners())
        .explore_parallel(
            &ExploreConfig::new()
                .max_runs(budget)
                .max_depth(12)
                .heartbeat_with(heartbeat.clone()),
            threads,
            |_worker| {
                let cell: Arc<Mutex<Option<Recorder<SnapOp<u32>, SnapResp<u32>>>>> =
                    Arc::new(Mutex::new(None));
                let fcell = Arc::clone(&cell);
                let sink = Arc::clone(&sink3);
                let make = move || {
                    let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
                    *fcell.lock().unwrap() = Some(rec.clone());
                    (0..2usize)
                        .map(|p| {
                            let rec = rec.clone();
                            Box::new(move |ctx: &mut SimCtx<AfekReg<u32>>| {
                                rec.record(p, SnapOp::Update(p as u32 + 1), || {
                                    asnap.update(ctx, p as u32 + 1);
                                    SnapResp::Ack
                                });
                                rec.invoke(p, SnapOp::Snap);
                                let view = asnap.snap(ctx);
                                rec.respond(p, SnapResp::View(view));
                            }) as ProcBody<'static, AfekReg<u32>, ()>
                        })
                        .collect::<Vec<_>>()
                };
                let visit = move |out: &SimOutcome<AfekReg<u32>, ()>| {
                    out.assert_no_panics();
                    let hist = cell.lock().unwrap().take().unwrap().snapshot();
                    sink.lock().unwrap().push(hist);
                    true
                };
                (make, visit)
            },
        );
    histories += drain_and_check(&spec2, &sink3, threads, "E6: Afek snapshot violation");

    // MW register, 2 processes, full depth (exhaustible).
    use apram_objects::mwreg::{MwRegOp, MwRegResp, MwRegSpec, MwRegister, Stamped};
    let reg = MwRegister::new(2);
    let sink4: HistorySink<MwRegOp, MwRegResp> = Arc::new(Mutex::new(Vec::new()));
    let mw_stats = SimBuilder::new(reg.registers::<u64>())
        .owners(reg.owners())
        .explore_parallel(
            &ExploreConfig::new().heartbeat_with(heartbeat),
            threads,
            |_worker| {
                let cell: Arc<Mutex<Option<Recorder<MwRegOp, MwRegResp>>>> =
                    Arc::new(Mutex::new(None));
                let fcell = Arc::clone(&cell);
                let sink = Arc::clone(&sink4);
                let make = move || {
                    let rec: Recorder<MwRegOp, MwRegResp> = Recorder::new();
                    *fcell.lock().unwrap() = Some(rec.clone());
                    (0..2usize)
                        .map(|p| {
                            let rec = rec.clone();
                            Box::new(move |ctx: &mut SimCtx<Stamped<u64>>| {
                                rec.invoke(p, MwRegOp::Write(p as u64 + 1));
                                reg.write(ctx, p as u64 + 1);
                                rec.respond(p, MwRegResp::Ack);
                                rec.invoke(p, MwRegOp::Read);
                                let v = reg.read(ctx);
                                rec.respond(p, MwRegResp::Value(v));
                            }) as ProcBody<'static, Stamped<u64>, ()>
                        })
                        .collect::<Vec<_>>()
                };
                let visit = move |out: &SimOutcome<Stamped<u64>, ()>| {
                    out.assert_no_panics();
                    let hist = cell.lock().unwrap().take().unwrap().snapshot();
                    sink.lock().unwrap().push(hist);
                    true
                };
                (make, visit)
            },
        );
    histories += drain_and_check(&MwRegSpec, &sink4, threads, "E6: MW register violation");

    E6Summary {
        snapshot: snap_stats,
        universal: uni_stats,
        afek: afek_stats,
        mwreg: mw_stats,
        histories_checked: histories,
    }
}

/// Number of processes in the exploration-throughput benchmark.
pub const EXPLORE_BENCH_PROCS: usize = 3;

/// One row of the exploration-throughput benchmark (`explore` in the
/// CLI, `BENCH_explore.json` on disk).
#[derive(Clone, Debug)]
pub struct ExploreBenchRow {
    /// Engine label: `"sequential"` (per-run thread spawning) or
    /// `"parallel"` (work-stealing workers over pooled sim threads).
    pub engine: &'static str,
    /// Worker threads (1 for the sequential engine).
    pub threads: usize,
    /// Schedules explored (identical for every row by construction).
    pub runs: u64,
    /// Wall-clock seconds of the exploration.
    pub wall_secs: f64,
    /// Schedules per second.
    pub runs_per_sec: f64,
    /// Throughput relative to the sequential engine.
    pub speedup: f64,
}

/// Run the exploration-throughput benchmark: the E4 scan object with
/// [`EXPLORE_BENCH_PROCS`] processes each performing one optimized scan,
/// plain exploration truncated at a fixed branching depth so every
/// engine enumerates exactly the same schedule tree. Rows report the
/// sequential explorer followed by the parallel one at each thread count
/// in the grid (`opts.threads` when set, else 1/2/4/8); speedups are
/// relative to the sequential row. Panics if any engine disagrees on the
/// number of schedules — the benchmark doubles as an equivalence check.
pub fn explore_bench_rows(opts: &ExpOpts) -> Vec<ExploreBenchRow> {
    let n = EXPLORE_BENCH_PROCS;
    let depth = if opts.quick { 5 } else { 7 };
    let econfig = ExploreConfig::new().max_depth(depth);
    let obj = ScanObject::new(n);
    let make = move || {
        (0..n)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<apram_lattice::MaxU64>| {
                    let mut h = ScanHandle::new(obj);
                    let _ = h.scan(ctx, apram_lattice::MaxU64::new(p as u64 + 1));
                }) as ProcBody<'static, apram_lattice::MaxU64, ()>
            })
            .collect::<Vec<_>>()
    };
    let sim = SimBuilder::new(obj.registers::<apram_lattice::MaxU64>()).owners(obj.owners());
    let seq = sim.explore(&econfig, make, |out| {
        out.assert_no_panics();
        true
    });
    let base_rps = seq.runs_per_sec();
    let mut rows = vec![ExploreBenchRow {
        engine: "sequential",
        threads: 1,
        runs: seq.runs,
        wall_secs: seq.elapsed.as_secs_f64(),
        runs_per_sec: base_rps,
        speedup: 1.0,
    }];
    let grid: Vec<usize> = if opts.threads != 0 {
        vec![opts.threads]
    } else {
        vec![1, 2, 4, 8]
    };
    for t in grid {
        let stats = sim.explore_parallel(&econfig, t, |_worker| {
            (make, |out: &SimOutcome<apram_lattice::MaxU64, ()>| {
                out.assert_no_panics();
                true
            })
        });
        assert_eq!(
            stats.runs, seq.runs,
            "parallel explorer must enumerate the sequential tree"
        );
        assert_eq!(stats.exhausted, seq.exhausted);
        assert_eq!(stats.truncated, seq.truncated);
        rows.push(ExploreBenchRow {
            engine: "parallel",
            threads: resolve_threads(t),
            runs: stats.runs,
            wall_secs: stats.elapsed.as_secs_f64(),
            runs_per_sec: stats.runs_per_sec(),
            speedup: if base_rps > 0.0 {
                stats.runs_per_sec() / base_rps
            } else {
                0.0
            },
        });
    }
    rows
}

/// E8 — ablation / soundness outcomes for one configuration.
#[derive(Clone, Debug)]
pub struct E8Row {
    /// Variant (or "OneShot" for the corrected fixed-round algorithm).
    pub variant: &'static str,
    /// Scan mode ("atomic", "collect", or "-" for OneShot).
    pub mode: &'static str,
    /// Configuration description.
    pub config: String,
    /// Search mode used ("exhaustive" or "random(N)").
    pub search: String,
    /// Executions examined.
    pub runs: u64,
    /// Did a safety violation appear, and what were the outputs?
    pub violation: Option<Vec<f64>>,
    /// Worst observed spread as a multiple of ε (where measured).
    pub spread_over_eps: Option<f64>,
}

/// Run the E8 grid: 2-process exhaustive safety, the n ≥ 3
/// counterexamples for every Figure 2 variant under both scan modes,
/// the bounded-spread measurement, and the corrected one-shot variant.
pub fn e8_rows(opts: &ExpOpts) -> Vec<E8Row> {
    use apram_agreement::ablation::max_spread;
    use apram_agreement::OneShotAgreement;
    let mut rows = Vec::new();
    // 2 processes: exhaustive, everything safe.
    for (variant, vname) in [
        (Variant::Full, "Full"),
        (Variant::NoRescan, "NoRescan"),
        (Variant::MidpointOfAll, "MidpointOfAll"),
    ] {
        for (mode, mname) in [(ScanMode::Atomic, "atomic"), (ScanMode::Collect, "collect")] {
            let out = explore_machine(0.6, &[0.0, 1.0], variant, mode, 3_000_000);
            rows.push(E8Row {
                variant: vname,
                mode: mname,
                config: "n=2, ε=0.6, inputs {0,1}".into(),
                search: "exhaustive".into(),
                runs: out.runs,
                violation: out.violation.map(|(_, ys)| ys),
                spread_over_eps: None,
            });
        }
    }
    // 3 processes: seeded random search; every Figure 2 variant breaks.
    let grid: [(
        Variant,
        &'static str,
        ScanMode,
        &'static str,
        f64,
        Vec<f64>,
        u64,
    ); 5] = [
        (
            Variant::Full,
            "Full",
            ScanMode::Collect,
            "collect",
            0.15,
            vec![0.0, 0.9, 1.0],
            1,
        ),
        (
            Variant::Full,
            "Full",
            ScanMode::Atomic,
            "atomic",
            0.15,
            vec![0.0, 0.9, 1.0],
            3,
        ),
        (
            Variant::NoRescan,
            "NoRescan",
            ScanMode::Collect,
            "collect",
            0.15,
            vec![0.0, 0.9, 1.0],
            1,
        ),
        (
            Variant::NoRescan,
            "NoRescan",
            ScanMode::Atomic,
            "atomic",
            0.15,
            vec![0.0, 0.9, 1.0],
            3,
        ),
        (
            Variant::MidpointOfAll,
            "MidpointOfAll",
            ScanMode::Atomic,
            "atomic",
            0.1,
            vec![0.0, 0.7, 1.0],
            2,
        ),
    ];
    for (variant, vname, mode, mname, eps, inputs, seed) in grid {
        let out = random_search(eps, &inputs, variant, mode, 30_000, seed);
        let spread = max_spread(eps, &inputs, variant, mode, 10_000, seed);
        rows.push(E8Row {
            variant: vname,
            mode: mname,
            config: format!("n={}, ε={eps}, inputs {inputs:?}", inputs.len()),
            search: "random(30000)".into(),
            runs: out.runs,
            violation: out.violation.map(|(_, ys)| ys),
            spread_over_eps: Some(spread),
        });
    }
    // The corrected fixed-round variant on the breaking configurations.
    let sim_seeds = if opts.quick { 40u64 } else { 200 };
    for (eps, inputs) in [
        (0.15f64, vec![0.0, 0.9, 1.0]),
        (0.08, vec![0.0, 0.5, 0.9, 1.0]),
    ] {
        let n = inputs.len();
        let obj = OneShotAgreement::new(n, eps, 0.0, 1.0);
        let mut violation = None;
        let mut runs = 0u64;
        let mut worst: f64 = 0.0;
        for seed in 0..sim_seeds {
            let inputs_ref = &inputs;
            let obj_ref = &obj;
            let out = SimBuilder::new(obj.registers())
                .owners(obj.owners())
                .strategy(apram_model::sim::strategy::SeededRandom::new(
                    opts.seed + seed,
                ))
                .run_symmetric(n, move |ctx| obj_ref.run(ctx, inputs_ref[ctx.proc()]));
            let ys = out.unwrap_results();
            runs += 1;
            worst = worst.max(apram_agreement::range_width(&ys) / eps);
            if !apram_agreement::spec::outputs_valid(eps, &inputs, &ys) {
                violation = Some(ys);
                break;
            }
        }
        rows.push(E8Row {
            variant: "OneShot (fixed R)",
            mode: "-",
            config: format!("n={n}, ε={eps}, inputs {inputs:?}"),
            search: format!("random({sim_seeds} sim)"),
            runs,
            violation,
            spread_over_eps: Some(worst),
        });
    }
    rows
}

/// The recorder cell shared between the E9 factory and its visitors.
/// `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>` so the factory is
/// `Send` and can serve as a per-worker factory of the parallel
/// explorer as well as the sequential one.
pub type E9RecCell = Arc<Mutex<Option<Recorder<SnapOp<u32>, SnapResp<u32>>>>>;

/// Number of processes in the E9 scenario (one scanner, two writers).
pub const E9_PROCS: usize = 3;

/// Body factory for the E9 forensics scenario: P0 runs one recorded
/// [`naive_collect`] scan, P1 and P2 each run two recorded updates. Every
/// recorded event sits *between* two shared accesses of its process (each
/// body opens with a warmup read of its own slot), so the captured
/// history is a deterministic function of the schedule — the re-execution
/// contract that exploration and schedule shrinking rely on.
///
/// Shared so the acceptance test in `tests/forensics.rs` drives the exact
/// scenario the experiment reports on.
pub fn e9_factory(
    arr: CollectArray,
    cell: E9RecCell,
) -> impl FnMut() -> Vec<ProcBody<'static, Tagged<u32>, ()>> {
    move || {
        let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
        *cell.lock().unwrap() = Some(rec.clone());
        let scanner = rec.clone();
        let mut bodies: Vec<ProcBody<'static, Tagged<u32>, ()>> =
            vec![Box::new(move |ctx: &mut SimCtx<Tagged<u32>>| {
                let _ = ctx.read(0); // warmup: anchor the events below
                scanner.invoke(0, SnapOp::Snap);
                let view = naive_collect(&arr, ctx);
                scanner.respond(0, SnapResp::View(view));
            })];
        for p in 1..E9_PROCS {
            let rec = rec.clone();
            bodies.push(Box::new(move |ctx: &mut SimCtx<Tagged<u32>>| {
                let _ = ctx.read(p); // warmup
                let mut h = DoubleCollect::new(arr);
                for k in 0..2u32 {
                    let v = 10 * p as u32 + k;
                    rec.record(p, SnapOp::Update(v), || {
                        h.update(ctx, v);
                        SnapResp::Ack
                    });
                }
            }));
        }
        bodies
    }
}

/// E9 — one operation class of the shrunk counterexample: observed
/// shared-memory steps vs the paper's per-operation cost.
#[derive(Clone, Debug)]
pub struct E9Row {
    /// Operation class label.
    pub op: &'static str,
    /// Completed operations of that class in the shrunk run.
    pub ops: u64,
    /// Shared accesses the class performed in the shrunk run (warmup
    /// reads excluded).
    pub observed_steps: u64,
    /// Analytic cost: `n` reads per collect, 1 write per update.
    pub bound: u64,
}

/// Everything E9 produces: the exploration (shrunk violation and span
/// tree inside), the per-operation step accounting of the minimal run,
/// the checker's structured witness explanation with its rendering, and
/// the checker's own span tree.
#[derive(Clone, Debug)]
pub struct E9Report {
    /// Exploration stats; [`ExploreStats::violation`] holds the shrink
    /// report and [`ExploreStats::spans`] the explorer span tree.
    pub explore: ExploreStats,
    /// Per-operation step counts vs paper costs, measured on the shrunk
    /// schedule's strict replay.
    pub rows: Vec<E9Row>,
    /// Structured explanation of why the shrunk run's history fails.
    pub explanation: FailureExplanation,
    /// Human-readable rendering of `explanation` (with the operation
    /// timeline).
    pub rendered: String,
    /// Span tree of the final traced linearizability check.
    pub check_spans: SpanNode,
    /// Search nodes the final check explored before concluding.
    pub check_explored: u64,
    /// Histories checked across exploration and shrinking.
    pub histories_checked: u64,
}

/// Run E9 — failure forensics end to end on the naive-collect negative
/// control: explore until the checker rejects a history, shrink the
/// failing schedule to a locally minimal one, strict-replay it, and
/// explain the resulting violation.
///
/// # Panics
/// Panics if the naive collect fails to produce a violation (it always
/// does: that is what makes it the negative control).
pub fn e9_forensics(opts: &ExpOpts) -> E9Report {
    let arr = CollectArray::new(E9_PROCS);
    let spec = SnapshotSpec::<u32>::new(E9_PROCS);
    let cell: E9RecCell = Arc::new(Mutex::new(None));
    let mut histories = 0u64;
    let econfig = ExploreConfig::new()
        .max_runs(if opts.quick { 20_000 } else { 200_000 })
        .shrink(ShrinkConfig::default())
        .trace_spans(true);
    let visit_cell = Arc::clone(&cell);
    let explore = SimBuilder::new(arr.registers::<u32>())
        .owners(arr.owners())
        .explore(&econfig, e9_factory(arr, Arc::clone(&cell)), |out| {
            out.assert_no_panics();
            let hist = visit_cell.lock().unwrap().take().unwrap().snapshot();
            histories += 1;
            check_linearizable(&spec, &hist, &CheckerConfig::default()).is_ok()
        });
    let report = explore
        .violation
        .clone()
        .expect("the naive collect must produce a violation");

    // Strict-replay the minimal schedule (every entry is serviced, so the
    // step budget pins the execution exactly) and explain its history.
    let mut factory = e9_factory(arr, Arc::clone(&cell));
    let out = SimBuilder::new(arr.registers::<u32>())
        .owners(arr.owners())
        .strategy(Replay::strict(report.schedule.clone()))
        .max_steps(report.schedule.len() as u64)
        .run(factory());
    out.assert_no_panics();
    let hist = cell.lock().unwrap().take().unwrap().snapshot();
    let mut spans = SpanRecorder::new("forensics");
    let verdict = check_linearizable_traced(&spec, &hist, &CheckerConfig::default(), &mut spans);
    let check_spans = spans.finish();
    let CheckOutcome::Violation(Violation::NotLinearizable {
        explored,
        explanation,
    }) = verdict
    else {
        panic!("shrunk schedule no longer violates: {verdict:?}");
    };
    let explanation = *explanation.expect("the exhaustive search tracks explanations");
    let ops = Ops::extract(&hist);
    let rendered = explanation.render(&ops);

    // Per-operation accounting on the minimal run. The scanner's accesses
    // are its warmup plus one collect (n reads); each serviced update is
    // exactly one write, so a locally minimal schedule should spend
    // nothing beyond the analytic costs.
    let updates: u64 = ops
        .records()
        .iter()
        .filter(|r| matches!(r.op, SnapOp::Update(_)) && !r.is_pending())
        .count() as u64;
    let rows = vec![
        E9Row {
            op: "naive collect scan (P0)",
            ops: 1,
            observed_steps: out.counts[0].reads.saturating_sub(1),
            bound: E9_PROCS as u64,
        },
        E9Row {
            op: "update (P1, P2)",
            ops: updates,
            observed_steps: (1..E9_PROCS).map(|p| out.counts[p].writes).sum(),
            bound: updates,
        },
    ];

    E9Report {
        explore,
        rows,
        explanation,
        rendered,
        check_spans,
        check_explored: explored,
        histories_checked: histories,
    }
}

// ---------------------------------------------------------------------------
// E10 — wait-freedom certification: the certified (n, f) grid

/// Workers used for the parallel-agreement half of every E10 cell.
const E10_THREADS: usize = 4;

/// One cell of the certified `(n, f)` grid.
#[derive(Clone, Debug)]
pub struct E10Row {
    /// Object under certification.
    pub object: &'static str,
    /// Number of processes.
    pub n: usize,
    /// Fault budget: the certificate covers every crash pattern with at
    /// most `f` crashes.
    pub f: usize,
    /// Branching depth of the certified schedule/crash prefix.
    pub depth: usize,
    /// Analytic per-process step bound the survivors are held to.
    pub bound: u64,
    /// Whether the cell is expected to certify — `false` only for the
    /// lock-based snapshot, the negative control.
    pub expect_pass: bool,
    /// The sequential certificate.
    pub cert: Certificate,
    /// Whether a 4-thread parallel certification of the same cell is
    /// bit-identical to the sequential certificate.
    pub parallel_agrees: bool,
}

impl E10Row {
    /// Worst observed survivor latency in the cell (max over processes;
    /// for a failed cell, over the witness execution).
    pub fn worst_latency(&self) -> u64 {
        self.cert.worst_steps.iter().copied().max().unwrap_or(0)
    }

    /// Verdict matches the expectation and the parallel certifier
    /// agreed.
    pub fn ok(&self) -> bool {
        self.cert.passed() == self.expect_pass && self.parallel_agrees
    }
}

/// Certify one cell sequentially and with [`E10_THREADS`] workers;
/// returns the sequential certificate and whether the parallel one is
/// bit-identical.
fn e10_cell<T, FMake, Check>(
    sim: &SimBuilder<'_, T>,
    ccfg: &CertifyConfig,
    mut make_pair: impl FnMut() -> (FMake, Check),
) -> (Certificate, bool)
where
    T: Clone + Send + Sync + 'static,
    FMake: FnMut() -> Vec<ProcBody<'static, T, ()>> + Send,
    Check: FnMut(&SimOutcome<T, ()>) -> bool + Send,
{
    let (factory, check) = make_pair();
    let cert = sim.certify(ccfg, factory, check);
    let par = sim.certify_parallel(ccfg, E10_THREADS, |_| make_pair());
    let agrees = par == cert;
    (cert, agrees)
}

/// The negative control: certification of the lock-based snapshot for
/// `n = 2, f = 1`. A crash while holding the lock wedges the survivor
/// on the spin, so the step-bound judge convicts. The *minimized*
/// witness then needs no crash at all — adversarial descheduling
/// starves the survivor just as well, which is exactly why locks are
/// not wait-free in this model.
fn e10_lock_row() -> E10Row {
    let (depth, bound, max_steps) = (6, 18, 64);
    let sim = SimBuilder::new(SimLockSnapshot::registers()).max_steps(max_steps);
    let ccfg = CertifyConfig::new([bound; 2])
        .explore(ExploreConfig::new().max_depth(depth).max_crashes(1));
    // Mutual exclusion is not in question; wait-freedom is: the step-
    // bound judge alone must convict, so `lock_pair`'s semantic check
    // accepts everything.
    let (cert, parallel_agrees) = e10_cell(&sim, &ccfg, lock_pair);
    E10Row {
        object: "lock snapshot",
        n: 2,
        f: 1,
        depth,
        bound,
        expect_pass: false,
        cert,
        parallel_agrees,
    }
}

/// E10 — the certified `(n, f)` grid: for each wait-free snapshot
/// construction and each fault budget `f`, an exhaustive fault-aware
/// certificate that every survivor finishes within its analytic step
/// bound and every crash-truncated history linearizes; plus the
/// lock-based snapshot as the expected-to-fail negative control.
pub fn e10_rows(opts: &ExpOpts) -> Vec<E10Row> {
    let ns: &[usize] = if opts.quick { &[2] } else { &[2, 3] };
    let mut rows = Vec::new();
    for &n in ns {
        for f in 0..=2usize {
            let depth = e10_depth(n, f);

            // Lattice-based atomic snapshot: update and snap are one
            // optimized scan each (n²−1 reads + n+1 writes).
            let snap = Snapshot::new(n);
            let bound = (2 * (n * n + n)) as u64;
            let sim = SimBuilder::new(snap.registers::<u32>()).owners(snap.owners());
            let ccfg = CertifyConfig::new(vec![bound; n])
                .explore(ExploreConfig::new().max_depth(depth).max_crashes(f));
            let (cert, parallel_agrees) = e10_cell(&sim, &ccfg, || {
                e10_pair(n, move |rec| e10_snapshot_bodies(snap, rec))
            });
            rows.push(E10Row {
                object: "snapshot",
                n,
                f,
                depth,
                bound,
                expect_pass: true,
                cert,
                parallel_agrees,
            });

            // Afek et al.: bounded update = n(n+2)+2, bounded snap ≤ n(n+2).
            let afek = AfekSnapshot::new(n);
            let bound = (2 * n * (n + 2) + 2) as u64;
            let sim = SimBuilder::new(afek.registers::<u32>()).owners(afek.owners());
            let ccfg = CertifyConfig::new(vec![bound; n])
                .explore(ExploreConfig::new().max_depth(depth).max_crashes(f));
            let (cert, parallel_agrees) = e10_cell(&sim, &ccfg, || {
                e10_pair(n, move |rec| e10_afek_bodies(afek, rec))
            });
            rows.push(E10Row {
                object: "afek",
                n,
                f,
                depth,
                bound,
                expect_pass: true,
                cert,
                parallel_agrees,
            });

            // Double collect: 1 write + a snap of ≤ n(n+2) reads (each
            // process updates once, so collects settle).
            let arr = CollectArray::new(n);
            let bound = (n * (n + 2) + 1) as u64;
            let sim = SimBuilder::new(arr.registers::<u32>()).owners(arr.owners());
            let ccfg = CertifyConfig::new(vec![bound; n])
                .explore(ExploreConfig::new().max_depth(depth).max_crashes(f));
            let (cert, parallel_agrees) = e10_cell(&sim, &ccfg, || {
                e10_pair(n, move |rec| e10_collect_bodies(arr, rec))
            });
            rows.push(E10Row {
                object: "double collect",
                n,
                f,
                depth,
                bound,
                expect_pass: true,
                cert,
                parallel_agrees,
            });
        }
    }
    rows.push(e10_lock_row());
    rows
}

// ---------------------------------------------------------------------------
// E11 — sampled tail latency: the stochastic complement of E10

/// One cell of the sampled tail-latency grid.
#[derive(Clone, Debug)]
pub struct E11Row {
    /// Object under sampling (a [`crate::sweep::SWEEP_OBJECTS`] name).
    pub object: String,
    /// Number of processes.
    pub n: usize,
    /// Random crash victims injected per run.
    pub f: usize,
    /// Analytic per-process step bound (for `lock`, the reference bound
    /// its tail is expected to blow through).
    pub bound: u64,
    /// Whether the tail is expected to stay within the bound — `false`
    /// only for the lock-based negative control.
    pub expect_within: bool,
    /// The sampling result (scheduler, histogram, CI, violations).
    pub report: apram_model::sim::SampleReport,
}

impl E11Row {
    /// The worst sampled survivor step count stayed within the bound.
    /// (`hist.max` is exact — unlike the quantiles it is not bucketed.)
    pub fn within_bound(&self) -> bool {
        self.report.hist.max <= self.bound
    }

    /// Verdict matches the expectation: wait-free tails inside the
    /// bound with zero exceedances, the lock tail outside it.
    pub fn ok(&self) -> bool {
        if self.expect_within {
            self.within_bound() && self.report.exceedances == 0 && self.report.passed()
        } else {
            !self.within_bound() && self.report.exceedances > 0
        }
    }

    /// JSON record for `BENCH_e11.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("object", Json::Str(self.object.clone())),
            ("n", Json::UInt(self.n as u64)),
            ("f", Json::UInt(self.f as u64)),
            ("bound", Json::UInt(self.bound)),
            ("expect_within", Json::Bool(self.expect_within)),
            ("within_bound", Json::Bool(self.within_bound())),
            ("ok", Json::Bool(self.ok())),
            ("sample", self.report.to_json()),
        ])
    }
}

/// E11 — the sampled tail-latency grid: for every wait-free snapshot
/// construction (and the paper's scan object), draw a large budget of
/// uniform-random and PCT schedules with one random crash per run and
/// record the per-survivor step distribution; the analytic bounds of
/// E10 must hold at every sampled percentile (p50/p99/p999/max, with a
/// Wilson 95% CI on the exceedance rate). The lock-based snapshot rides
/// along as the unbounded-tail negative control: its p999/max blow
/// through the reference bound that wait-free objects cannot exceed.
///
/// Seeding follows the sweep scheme exactly — each cell samples from
/// `split(seed, STREAM_CELL ^ fnv1a(cell_id))` — so an E11 cell is
/// bit-identical to the same cell run by `experiments sweep`.
pub fn e11_rows(opts: &ExpOpts) -> Vec<E11Row> {
    use crate::sweep::{object_bound, run_sample_cell, CellSched, SweepCell};
    let ns: &[usize] = if opts.quick { &[2] } else { &[2, 3] };
    let runs: u64 = if opts.quick { 300 } else { 4000 };
    let scheds = [CellSched::Random, CellSched::Pct(3)];
    let mut rows = Vec::new();
    let push = |object: &str, n: usize, expect_within: bool, rows: &mut Vec<E11Row>| {
        for sched in scheds {
            let cell = SweepCell {
                object: object.into(),
                n,
                f: 1,
                sched,
                runs,
                depth: 0,
            };
            let report = run_sample_cell(&cell, cell.seed(opts.seed), opts.threads);
            rows.push(E11Row {
                object: object.into(),
                n,
                f: 1,
                bound: object_bound(object, n),
                expect_within,
                report,
            });
        }
    };
    for &n in ns {
        for object in ["snapshot", "afek", "double-collect", "scan"] {
            push(object, n, true, &mut rows);
        }
    }
    push("lock", 2, false, &mut rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_counts_match_claims() {
        for row in e4_rows(&[2, 3, 5]) {
            assert_eq!(row.literal, row.literal_claim, "n={}", row.n);
            assert_eq!(row.optimized, row.optimized_claim, "n={}", row.n);
        }
    }

    #[test]
    fn e5_counts_match_claims() {
        for row in e5_rows(&[2, 3]) {
            assert_eq!(row.reads, row.reads_claim, "n={}", row.n);
            assert_eq!(row.writes, row.writes_claim, "n={}", row.n);
        }
    }

    #[test]
    fn e2_meets_bound() {
        for row in e2_rows(4) {
            assert!(row.forced_confrontations >= row.bound, "{row:?}");
            assert!(row.final_gap < 3f64.powi(-(row.k as i32)), "{row:?}");
        }
    }

    #[test]
    fn e1_within_bound() {
        for row in e1_rows(&ExpOpts::default())
            .into_iter()
            .filter(|r| r.n <= 4)
        {
            assert!(
                row.measured_worst <= row.bound,
                "measured {} > bound {} at n={} Δ/ε={}",
                row.measured_worst,
                row.bound,
                row.n,
                row.delta_over_eps
            );
        }
    }

    #[test]
    fn e6_explores_and_checks() {
        let s = e6_summary(&ExpOpts {
            seed: 0,
            quick: true,
            threads: 2,
        });
        let total_runs: u64 = s.per_object().iter().map(|(_, st)| st.runs).sum();
        assert_eq!(s.histories_checked, total_runs);
        for (name, st) in s.per_object() {
            assert!(st.runs > 0, "{name}: no schedules explored");
            assert!(st.max_depth_reached > 0, "{name}: depth not tracked");
            assert!(st.replay_ratio() < 1.0, "{name}: {st:?}");
            assert_eq!(st.sleep_skips, 0, "{name}: plain explore cannot prune");
        }
    }

    #[test]
    fn explore_bench_engines_agree_on_the_tree() {
        let rows = explore_bench_rows(&ExpOpts {
            seed: 0,
            quick: true,
            threads: 2,
        });
        // Sequential baseline plus one parallel row for the requested
        // thread count; explore_bench_rows itself asserts run equality.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].engine, "sequential");
        assert_eq!(rows[1].engine, "parallel");
        assert_eq!(rows[1].threads, 2);
        assert_eq!(rows[0].runs, rows[1].runs);
        for row in &rows {
            assert!(row.runs > 0, "{row:?}");
            assert!(row.wall_secs > 0.0, "{row:?}");
            assert!(row.runs_per_sec > 0.0, "{row:?}");
            assert!(row.speedup > 0.0, "{row:?}");
        }
    }

    #[test]
    fn e10_grid_certifies_as_expected() {
        let rows = e10_rows(&ExpOpts {
            seed: 0,
            quick: true,
            threads: 0,
        });
        // Quick grid: 3 objects × f ∈ {0,1,2} at n=2, plus the lock.
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(row.ok(), "cell failed: {row:?}");
            assert!(row.cert.runs > 0, "{row:?}");
        }
        let lock = rows.last().unwrap();
        assert_eq!(lock.object, "lock snapshot");
        assert!(!lock.cert.passed(), "lock snapshot must not certify");
        let v = lock.cert.violation.as_ref().expect("lock violation");
        assert!(
            matches!(v.kind, apram_model::ViolationKind::StepBound { .. }),
            "{v:?}"
        );
        // The shrinker minimizes the crash pattern all the way to empty:
        // starving the survivor on the lock spin needs no crash, because
        // in this model a crash is only permanent descheduling.
        assert!(v.report.crashes.is_empty(), "{v:?}");
    }

    #[test]
    fn e11_tails_respect_bounds_and_convict_the_lock() {
        let rows = e11_rows(&ExpOpts {
            seed: 0,
            quick: true,
            threads: 2,
        });
        // Quick grid: 4 wait-free objects × 2 samplers at n=2, + 2 lock cells.
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(row.ok(), "cell failed: {row:?}");
            assert_eq!(row.report.runs, 300, "{row:?}");
            assert!(row.report.samples > 0, "{row:?}");
        }
        let schedulers: Vec<&str> = rows.iter().map(|r| r.report.scheduler.as_str()).collect();
        assert!(schedulers.contains(&"random") && schedulers.contains(&"pct(3)"));
        // Wait-free tails: every percentile inside the bound, and the
        // 95% CI on the exceedance rate starts at zero.
        for row in rows.iter().filter(|r| r.expect_within) {
            assert!(row.report.hist.p999() <= row.bound, "{row:?}");
            assert_eq!(row.report.exceed_ci().0, 0.0, "{row:?}");
        }
        // The lock's tail blows through the reference bound.
        for lock in rows.iter().filter(|r| r.object == "lock") {
            assert!(lock.report.hist.max > lock.bound, "{lock:?}");
            assert!(lock.report.exceed_rate() > 0.0, "{lock:?}");
        }
    }

    #[test]
    fn e9_minimal_run_meets_paper_costs() {
        let r = e9_forensics(&ExpOpts {
            seed: 0,
            quick: true,
            threads: 0,
        });
        let shrink = r.explore.violation.as_ref().expect("violation captured");
        assert!(
            shrink.schedule.len() < shrink.original.len(),
            "shrunk {} vs original {}",
            shrink.schedule.len(),
            shrink.original.len()
        );
        // A locally minimal run spends exactly the analytic per-op costs.
        for row in &r.rows {
            assert!(row.ops > 0, "{row:?}");
            assert_eq!(row.observed_steps, row.bound, "{row:?}");
        }
        assert!(!r.explanation.edges.is_empty());
        assert!(r.rendered.contains("not linearizable"), "{}", r.rendered);
        assert!(r.rendered.contains("timeline:"), "{}", r.rendered);
        // Both span trees are present: the explorer's (with a nested
        // shrink span) and the checker's.
        let espans = r.explore.spans.as_ref().expect("explore spans");
        assert!(espans.children.iter().any(|c| c.name == "shrink"));
        let check = r
            .check_spans
            .children
            .iter()
            .find(|c| c.name == "check")
            .expect("check span");
        assert_eq!(check.counter("nodes"), Some(r.check_explored));
        assert!(r.histories_checked > r.explore.runs, "shrink re-checks");
    }

    #[test]
    fn e8_shapes() {
        let rows = e8_rows(&ExpOpts::default());
        // 2-process exhaustive rows are all safe.
        assert!(rows
            .iter()
            .filter(|r| r.search == "exhaustive")
            .all(|r| r.violation.is_none()));
        // Every Figure 2 variant violates at n ≥ 3 (both modes for Full).
        for (v, m) in [
            ("Full", "collect"),
            ("Full", "atomic"),
            ("NoRescan", "collect"),
            ("MidpointOfAll", "atomic"),
        ] {
            assert!(
                rows.iter().any(|r| r.variant == v
                    && r.mode == m
                    && r.search != "exhaustive"
                    && r.violation.is_some()),
                "expected {v}/{m} violation"
            );
        }
        // The corrected variant is safe with small spread.
        assert!(rows
            .iter()
            .filter(|r| r.variant.starts_with("OneShot"))
            .all(|r| r.violation.is_none() && r.spread_over_eps.unwrap() < 1.0));
    }
}
