//! E14 — flight-recorder overhead and online linearizability
//! spot-checks on the native backend.
//!
//! PR 8's E13 measured the native register file's raw throughput; E14
//! measures what *observing* it costs. The grid crosses:
//!
//! * **objects** — the striped counter (packed tier), the direct
//!   max-register (packed), the Afek et al. bounded snapshot (buffered
//!   tier, owner-mapped SWMR cells), and `mwreg` — a single buffered
//!   register with *no* owner map, so every write goes through the
//!   MWMR hardware-ticket path and `TicketDraw` events actually fire;
//! * **recorder modes** — `off` (no [`apram_model::FlightRecorder`]
//!   attached: the
//!   per-access cost is one `Option` branch), `sampled64` (1-in-64
//!   ops traced), and `always` (every op traced);
//! * **threads** — the E13 thread grid.
//!
//! Each cell brackets its logical ops with [`NativeCtx::op_begin`] /
//! `op_end`, then drains the rings and reports throughput, latency
//! percentiles, and the flight-log columns: events recorded / drained
//! / dropped (exact by the ring accounting invariant), `ReadRetry`
//! event count, ticket draws, and draws that landed within 1µs of
//! another process's draw (`contended_draws` — the Bender et al.
//! contention-event measure).
//!
//! The **spot-check** phase is drain (c) from the flight-recorder
//! design: dedicated always-on runs, small enough that no ring ever
//! drops, whose begin/end events are reconstructed into op histories
//! and batch-checked with [`check_histories_parallel`] — the native
//! twin of the simulator's witness pipeline. Reconstruction is sound
//! because begin stamps are taken before the op's first shared access
//! and end stamps after its last: the measured interval *contains* the
//! true one, so any precedence the reconstruction asserts
//! (`end(A) < begin(B)`) also holds between the true intervals, and a
//! linearization of the widened history would only get easier — i.e.
//! the check can produce false alarms never, missed overlaps at worst.
//!
//! Gates (enforced in CI on the quick grid via
//! `scripts/compare_bench.py --e14-gate`): 1-in-64 sampling must keep
//! ≥ 95% of recorder-off counter throughput (summed across thread
//! counts, which absorbs per-cell runner noise), every spot-checked
//! history must be linearizable, and the spot-check runs must have
//! dropped zero events (otherwise the histories would be partial).

use crate::{e13_threads, host_parallelism, spec_ops_per_thread, ExpOpts};
use apram_core::counter::{CounterOp, CounterResp};
use apram_core::CounterSpec;
use apram_history::check::CheckerConfig;
use apram_history::{check_histories_parallel, history_from_spans, History};
use apram_model::seed::split;
use apram_model::telemetry::{HistogramSnapshot, TelemetryRegistry};
use apram_model::{FlightEvent, FlightLog, FlightMode, Json, NativeMemory, OpSpan, StepHistogram};
use apram_objects::maxreg::{DirectMaxRegister, MaxRegOp, MaxRegResp, MaxRegSpec};
use apram_objects::spec::{decode_opt, encode_opt, native_spec, BuildCtx};
use apram_objects::striped::StripedCounter;
use apram_snapshot::afek::AfekSnapshot;
use apram_snapshot::{SnapOp, SnapResp, SnapshotSpec};
use std::sync::Barrier;
use std::time::Instant;

/// The E14 object names, in emission order (each is an
/// [`apram_objects::spec`] registry name; each cell runs on its spec's
/// preferred tier).
pub const E14_OBJECTS: [&str; 4] = ["counter", "maxreg", "afek", "mwreg"];

/// The E14 recorder modes, in emission order.
pub const E14_MODES: [&str; 3] = ["off", "sampled64", "always"];

/// Flight-op code: the object's update operation (inc / write_max /
/// update / write). Same value every factory session records.
pub const E14_OP_UPDATE: u32 = apram_objects::spec::OP_UPDATE;
/// Flight-op code: the object's read operation (read / snap).
pub const E14_OP_READ: u32 = apram_objects::spec::OP_READ;

/// Ring capacity for grid cells. Deliberately smaller than a cell's
/// event volume so drop-oldest actually engages and the accounting
/// columns exercise the lapped path; the spot-check phase uses its own
/// generous capacity and asserts zero drops.
const GRID_FLIGHT_CAP: usize = 1 << 12;

fn e14_mode(name: &str) -> FlightMode {
    match name {
        "off" => FlightMode::Off,
        "sampled64" => FlightMode::Sampled(64),
        "always" => FlightMode::Always,
        other => panic!("unknown E14 mode '{other}'"),
    }
}

/// Human-readable flight-op names per object, for the Chrome trace
/// (straight from the object's registry spec).
pub fn e14_op_name(object: &'static str) -> impl Fn(u32) -> String {
    let spec = native_spec(object);
    move |op| match (spec, op) {
        (Some(s), E14_OP_UPDATE | E14_OP_READ) => s.op_label(op).to_string(),
        _ => format!("op{op}"),
    }
}

/// One cell of the E14 grid.
#[derive(Clone, Debug)]
pub struct E14Row {
    /// Object name (one of [`E14_OBJECTS`]).
    pub object: &'static str,
    /// Recorder mode (one of [`E14_MODES`]).
    pub mode: &'static str,
    /// Concurrent OS threads (= processes).
    pub threads: usize,
    /// Total iterations across all threads (one iteration = update +
    /// read, matching the E13 op convention so ratios are comparable).
    pub total_ops: u64,
    /// Wall-clock of the measured region.
    pub elapsed_secs: f64,
    /// `total_ops / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Per-iteration latency distribution in nanoseconds.
    pub hist: HistogramSnapshot,
    /// Buffered-tier reader validation retries (memory-global counter).
    pub read_retries: u64,
    /// MWMR hardware tickets drawn (memory-global counter).
    pub ticket_draws: u64,
    /// Flight events recorded across all rings.
    pub events_recorded: u64,
    /// Flight events surviving into the drained log.
    pub events_drained: u64,
    /// Flight events lost to drop-oldest (exact:
    /// `recorded == drained + dropped`).
    pub events_dropped: u64,
    /// `ReadRetry` events in the drained log.
    pub retry_events: u64,
    /// `TicketDraw` events within 1µs of another process's draw on the
    /// same register.
    pub contended_draws: u64,
    /// Complete op spans (begin/end pairs) reconstructed from the log.
    pub sampled_spans: u64,
}

impl E14Row {
    /// JSON record for `BENCH_e14.json`. Wall-clock-derived fields and
    /// every flight-log column are volatile across runs;
    /// `scripts/compare_bench.py` excludes them from byte diffs and
    /// gates on the ratios instead.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("object", Json::Str(self.object.into())),
            ("mode", Json::Str(self.mode.into())),
            ("threads", Json::UInt(self.threads as u64)),
            ("total_ops", Json::UInt(self.total_ops)),
            ("elapsed_secs", Json::Float(self.elapsed_secs)),
            ("ops_per_sec", Json::Float(self.ops_per_sec)),
            ("p50_ns", Json::UInt(self.hist.p50())),
            ("p99_ns", Json::UInt(self.hist.p99())),
            ("p999_ns", Json::UInt(self.hist.p999())),
            ("max_ns", Json::UInt(self.hist.max)),
            ("mean_ns", Json::Float(self.hist.mean())),
            ("read_retries", Json::UInt(self.read_retries)),
            ("ticket_draws", Json::UInt(self.ticket_draws)),
            ("events_recorded", Json::UInt(self.events_recorded)),
            ("events_drained", Json::UInt(self.events_drained)),
            ("events_dropped", Json::UInt(self.events_dropped)),
            ("retry_events", Json::UInt(self.retry_events)),
            ("contended_draws", Json::UInt(self.contended_draws)),
            ("sampled_spans", Json::UInt(self.sampled_spans)),
        ])
    }
}

/// Run one timed cell (the E13 barrier/clock discipline: session setup
/// outside the measured region, clock started before the barrier
/// releases). Factory sessions bracket every op with
/// `op_begin`/`op_end` themselves, so flight recording needs no
/// per-object code here.
fn e14_run_cell(
    inst: &dyn apram_objects::spec::ObjectInstance,
    threads: usize,
    ops: u64,
) -> (f64, HistogramSnapshot) {
    let hist = StepHistogram::new();
    let barrier = Barrier::new(threads + 1);
    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let mut sess = inst.session(t);
            let (barrier, hist) = (&barrier, &hist);
            s.spawn(move || {
                barrier.wait();
                for k in 0..ops {
                    let t0 = Instant::now();
                    sess.op(E14_OP_UPDATE, k, k);
                    sess.op(E14_OP_READ, k, 0);
                    hist.record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    (start.elapsed().as_secs_f64(), hist.snapshot())
}

/// Assemble a row from a finished cell: fold the drained log (if the
/// recorder was on) into the flight columns.
#[allow(clippy::too_many_arguments)]
fn finish(
    object: &'static str,
    mode: &'static str,
    threads: usize,
    ops: u64,
    elapsed: f64,
    hist: HistogramSnapshot,
    retries: u64,
    tickets: u64,
    log: Option<&FlightLog>,
) -> E14Row {
    let total_ops = ops * threads as u64;
    let (recorded, drained, dropped, retry_events, contended, spans) = match log {
        Some(log) => (
            log.recorded,
            log.drained,
            log.dropped,
            log.events
                .iter()
                .flatten()
                .filter(|e| matches!(e, FlightEvent::ReadRetry { .. }))
                .count() as u64,
            log.contended_draws(1_000),
            log.op_spans().len() as u64,
        ),
        None => (0, 0, 0, 0, 0, 0),
    };
    E14Row {
        object,
        mode,
        threads,
        total_ops,
        elapsed_secs: elapsed,
        ops_per_sec: total_ops as f64 / elapsed.max(1e-9),
        hist,
        read_retries: retries,
        ticket_draws: tickets,
        events_recorded: recorded,
        events_drained: drained,
        events_dropped: dropped,
        retry_events,
        contended_draws: contended,
        sampled_spans: spans,
    }
}

/// Run one grid cell of any registered object on its preferred tier.
/// When `registry` is set (drain (b): the Prometheus path), the drain
/// goes through the instance's delta-aware `snapshot_prometheus` — the
/// same call `apram-serve`'s `/metrics` endpoint makes.
fn run_obj_cell(
    object: &'static str,
    mode: &'static str,
    threads: usize,
    quick: bool,
    registry: Option<&TelemetryRegistry>,
) -> (E14Row, Option<FlightLog>) {
    let spec = native_spec(object).unwrap_or_else(|| panic!("unknown object '{object}'"));
    let ops = spec_ops_per_thread(spec, threads, quick);
    let inst = spec
        .build(&BuildCtx::new(threads, spec.tiers()[0]).flight(e14_mode(mode), GRID_FLIGHT_CAP));
    let (elapsed, hist) = e14_run_cell(inst.as_ref(), threads, ops);
    let log = match registry {
        Some(reg) => inst.snapshot_prometheus(reg, object),
        None => inst.flight_log(),
    };
    let row = finish(
        object,
        mode,
        threads,
        ops,
        elapsed,
        hist,
        inst.read_retries(),
        inst.ticket_draws(),
        log.as_ref(),
    );
    (row, log)
}

/// `None` ↦ `u64::MAX`, `Some(v)` ↦ `v as u64` (the E14 max-register
/// workload only writes non-negative values, so the sentinel is free).
/// Same encoding every factory session uses on the wire and in spans.
fn encode_maxreg_resp(v: Option<i64>) -> u64 {
    encode_opt(v)
}

fn decode_maxreg_resp(resp: u64) -> Option<i64> {
    decode_opt(resp)
}

/// Rebuild a checkable [`History`] from reconstructed op spans
/// (drain (c)). Now a thin alias for the shared
/// [`apram_history::history_from_spans`] — the serve audit and the E14
/// spot-checks must reconstruct identically, so the logic lives in one
/// place.
pub fn spans_to_history<O, R>(
    spans: &[OpSpan],
    mk_op: impl Fn(&OpSpan) -> O,
    mk_resp: impl Fn(&OpSpan) -> R,
) -> History<O, R> {
    history_from_spans(spans, mk_op, mk_resp)
}

/// Outcome of the online linearizability spot-check.
#[derive(Clone, Debug, Default)]
pub struct E14SpotCheck {
    /// Histories reconstructed and checked.
    pub histories: u64,
    /// Total op spans across those histories.
    pub ops: u64,
    /// Flight events dropped across the spot-check runs (must be 0 for
    /// the histories to be complete).
    pub dropped: u64,
    /// Whether every history passed [`check_histories_parallel`].
    pub all_linearizable: bool,
    /// Failure descriptions, if any.
    pub failures: Vec<String>,
}

impl E14SpotCheck {
    fn absorb(&mut self, label: &str, outcomes: &[apram_history::check::CheckOutcome]) {
        for (i, o) in outcomes.iter().enumerate() {
            if !o.is_ok() {
                self.all_linearizable = false;
                self.failures.push(format!("{label} history {i}: {o:?}"));
            }
        }
    }

    /// JSON record for the report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("histories", Json::UInt(self.histories)),
            ("ops", Json::UInt(self.ops)),
            ("dropped", Json::UInt(self.dropped)),
            ("all_linearizable", Json::Bool(self.all_linearizable)),
            (
                "failures",
                Json::Arr(self.failures.iter().map(|f| Json::Str(f.clone())).collect()),
            ),
        ])
    }
}

/// Spot-check sizing: small histories (the checker is exponential in
/// ops; the sim-side witness pipeline uses the same scale) but a
/// generous ring, so nothing drops.
const SPOT_PROCS: usize = 3;
const SPOT_ROUNDS: u64 = 4;
const SPOT_FLIGHT_CAP: usize = 1 << 10;

/// Drain a spot-check run's log into spans, folding the accounting
/// into `sc`.
fn spot_spans(mem_log: Option<FlightLog>, sc: &mut E14SpotCheck) -> Vec<OpSpan> {
    let log = mem_log.expect("spot-check memories always record");
    sc.dropped += log.dropped;
    let spans = log.op_spans();
    sc.ops += spans.len() as u64;
    sc.histories += 1;
    spans
}

/// Run the online linearizability spot-check: free-running native
/// threads on counter / max-register / Afek snapshot with the recorder
/// always on, histories reconstructed from the flight log and checked
/// in parallel batches.
pub fn e14_spot_check(opts: &ExpOpts) -> E14SpotCheck {
    let n = SPOT_PROCS;
    let seeds: u64 = if opts.quick { 3 } else { 6 };
    let cfg = CheckerConfig::default();
    let mut sc = E14SpotCheck {
        all_linearizable: true,
        ..Default::default()
    };

    // Striped counter (packed tier).
    let mut batch: Vec<History<CounterOp, CounterResp>> = Vec::new();
    for seed in 0..seeds {
        let c = StripedCounter::new(n);
        let mem = NativeMemory::new_packed(n, c.registers())
            .with_owners(c.owners())
            .with_flight(FlightMode::Always, SPOT_FLIGHT_CAP);
        std::thread::scope(|s| {
            for p in 0..n {
                let mem = mem.clone();
                let mut h = c.handle();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    let mut rng = split(opts.seed ^ seed, p as u64);
                    for _ in 0..SPOT_ROUNDS {
                        rng = split(rng, 1);
                        if rng % 2 == 0 {
                            ctx.op_begin(E14_OP_UPDATE, 1);
                            h.inc(&mut ctx);
                            ctx.op_end(E14_OP_UPDATE, 0);
                        } else {
                            ctx.op_begin(E14_OP_READ, 0);
                            let v = h.read(&mut ctx);
                            ctx.op_end(E14_OP_READ, v);
                        }
                    }
                });
            }
        });
        let spans = spot_spans(mem.flight_log(), &mut sc);
        batch.push(spans_to_history(
            &spans,
            |s| {
                if s.op == E14_OP_UPDATE {
                    CounterOp::Inc(1)
                } else {
                    CounterOp::Read
                }
            },
            |s| {
                if s.op == E14_OP_UPDATE {
                    CounterResp::Ack
                } else {
                    CounterResp::Value(s.resp as i64)
                }
            },
        ));
    }
    let outcomes = check_histories_parallel(&CounterSpec, &batch, &cfg, opts.threads);
    sc.absorb("counter", &outcomes);

    // Direct max-register (packed tier).
    let mut batch: Vec<History<MaxRegOp, MaxRegResp>> = Vec::new();
    for seed in 0..seeds {
        let r = DirectMaxRegister::new(n);
        let mem = NativeMemory::new_packed(n, r.registers())
            .with_owners(r.owners())
            .with_flight(FlightMode::Always, SPOT_FLIGHT_CAP);
        std::thread::scope(|s| {
            for p in 0..n {
                let mem = mem.clone();
                let mut h = r.handle();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    let mut rng = split(opts.seed ^ seed, 100 + p as u64);
                    for _ in 0..SPOT_ROUNDS {
                        rng = split(rng, 1);
                        if rng % 2 == 0 {
                            let v = (rng % 50) as i64;
                            ctx.op_begin(E14_OP_UPDATE, v as u64);
                            h.write_max(&mut ctx, v);
                            ctx.op_end(E14_OP_UPDATE, 0);
                        } else {
                            ctx.op_begin(E14_OP_READ, 0);
                            let v = h.read(&mut ctx);
                            ctx.op_end(E14_OP_READ, encode_maxreg_resp(v));
                        }
                    }
                });
            }
        });
        let spans = spot_spans(mem.flight_log(), &mut sc);
        batch.push(spans_to_history(
            &spans,
            |s| {
                if s.op == E14_OP_UPDATE {
                    MaxRegOp::WriteMax(s.arg as i64)
                } else {
                    MaxRegOp::Read
                }
            },
            |s| {
                if s.op == E14_OP_UPDATE {
                    MaxRegResp::Ack
                } else {
                    MaxRegResp::Value(decode_maxreg_resp(s.resp))
                }
            },
        ));
    }
    let outcomes = check_histories_parallel(&MaxRegSpec, &batch, &cfg, opts.threads);
    sc.absorb("maxreg", &outcomes);

    // Afek snapshot (buffered tier). Snap views don't fit the span's
    // u64 `resp`, so each thread keeps its views in a side vector and
    // the span's `resp` is the index into it.
    let mut batch: Vec<History<SnapOp<u64>, SnapResp<u64>>> = Vec::new();
    for seed in 0..seeds {
        let snap = AfekSnapshot::new(n);
        let mem = NativeMemory::new(n, snap.registers::<u64>())
            .with_owners(snap.owners())
            .with_flight(FlightMode::Always, SPOT_FLIGHT_CAP);
        let views: Vec<Vec<Vec<Option<u64>>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|p| {
                    let mem = mem.clone();
                    let snap = &snap;
                    s.spawn(move || {
                        let mut ctx = mem.ctx(p);
                        let mut mine = Vec::new();
                        let mut rng = split(opts.seed ^ seed, 200 + p as u64);
                        for _ in 0..SPOT_ROUNDS {
                            rng = split(rng, 1);
                            let v = rng % 1000;
                            ctx.op_begin(E14_OP_UPDATE, v);
                            snap.update(&mut ctx, v);
                            ctx.op_end(E14_OP_UPDATE, 0);
                            ctx.op_begin(E14_OP_READ, 0);
                            let view = snap.snap::<u64, _>(&mut ctx);
                            ctx.op_end(E14_OP_READ, mine.len() as u64);
                            mine.push(view);
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let spans = spot_spans(mem.flight_log(), &mut sc);
        batch.push(spans_to_history(
            &spans,
            |s| {
                if s.op == E14_OP_UPDATE {
                    SnapOp::Update(s.arg)
                } else {
                    SnapOp::Snap
                }
            },
            |s| {
                if s.op == E14_OP_UPDATE {
                    SnapResp::Ack
                } else {
                    SnapResp::View(views[s.proc][s.resp as usize].clone())
                }
            },
        ));
    }
    let spec = SnapshotSpec::<u64>::new(n);
    let outcomes = check_histories_parallel(&spec, &batch, &cfg, opts.threads);
    sc.absorb("afek", &outcomes);

    sc
}

/// Everything E14 produces: the overhead grid, the merged Chrome
/// trace (drain (a)), the Prometheus exposition (drain (b)), and the
/// spot-check outcome (drain (c)).
pub struct E14Output {
    /// The overhead grid.
    pub rows: Vec<E14Row>,
    /// Merged Chrome-trace document: one process per object (the
    /// sampled64 cells at the top thread count), one track per thread.
    pub trace: Json,
    /// Prometheus exposition from the drained logs and memory-global
    /// counters of those same cells.
    pub prom: String,
    /// Online linearizability spot-check outcome.
    pub spot: E14SpotCheck,
}

/// Run the full E14 experiment: grid, trace, telemetry, spot-check.
pub fn e14_run(opts: &ExpOpts) -> E14Output {
    let threads_grid = e13_threads(opts.quick);
    let max_t = *threads_grid.last().unwrap();
    let registry = TelemetryRegistry::new(1);
    let mut rows = Vec::new();
    let mut trace_events = Vec::new();
    for &threads in threads_grid {
        for (oi, object) in E14_OBJECTS.into_iter().enumerate() {
            for mode in E14_MODES {
                // Only the trace-donating cells export telemetry, so
                // the exposition stays one series per object.
                let donate = threads == max_t && mode == "sampled64";
                let (row, log) = run_obj_cell(
                    object,
                    mode,
                    threads,
                    opts.quick,
                    donate.then_some(&registry),
                );
                if donate {
                    if let Some(log) = &log {
                        trace_events.push(Json::obj([
                            ("ph", Json::Str("M".into())),
                            ("pid", Json::UInt(oi as u64)),
                            ("name", Json::Str("process_name".into())),
                            ("args", Json::obj([("name", Json::Str(object.into()))])),
                        ]));
                        trace_events
                            .extend(log.chrome_trace_events(oi as u64, &e14_op_name(object)));
                    }
                }
                rows.push(row);
            }
        }
    }
    let trace = Json::obj([
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ]);
    let spot = e14_spot_check(opts);
    E14Output {
        rows,
        trace,
        prom: registry.to_prometheus(),
        spot,
    }
}

fn sum_ops(rows: &[E14Row], object: &str, mode: &str) -> f64 {
    rows.iter()
        .filter(|r| r.object == object && r.mode == mode)
        .map(|r| r.ops_per_sec)
        .sum()
}

/// The gate section of `BENCH_e14.json`.
///
/// * `sampled_over_off_counter` — 1-in-64-sampled counter throughput /
///   recorder-off throughput, summed across the thread grid (CI
///   enforces ≥ 0.95: sampling costs ≤ 5%);
/// * `sampled_over_off_counter_by_threads` — the same ratio per thread
///   count (informational; single cells are noisier);
/// * `always_over_off_counter` — what always-on tracing costs
///   (informational — this is the mode you pay for only when
///   debugging);
/// * `spotcheck_*` — the online check's verdict; CI requires
///   `all_linearizable == true` and `dropped == 0` with at least one
///   history checked.
pub fn e14_gates(rows: &[E14Row], spot: &E14SpotCheck, quick: bool) -> Json {
    let ratio = |num: f64, den: f64| {
        if den > 0.0 {
            Json::Float(num / den)
        } else {
            Json::Null
        }
    };
    let by_threads: Vec<(String, Json)> = e13_threads(quick)
        .iter()
        .map(|&t| {
            let pick = |mode: &str| {
                rows.iter()
                    .find(|r| r.object == "counter" && r.mode == mode && r.threads == t)
                    .map(|r| r.ops_per_sec)
                    .unwrap_or(0.0)
            };
            (t.to_string(), ratio(pick("sampled64"), pick("off")))
        })
        .collect();
    Json::obj([
        ("available_parallelism", Json::UInt(host_parallelism())),
        (
            "sampled_over_off_counter",
            ratio(
                sum_ops(rows, "counter", "sampled64"),
                sum_ops(rows, "counter", "off"),
            ),
        ),
        ("sampled_over_off_counter_by_threads", Json::Obj(by_threads)),
        (
            "always_over_off_counter",
            ratio(
                sum_ops(rows, "counter", "always"),
                sum_ops(rows, "counter", "off"),
            ),
        ),
        ("spotcheck_histories", Json::UInt(spot.histories)),
        ("spotcheck_ops", Json::UInt(spot.ops)),
        ("spotcheck_dropped", Json::UInt(spot.dropped)),
        (
            "spotcheck_all_linearizable",
            Json::Bool(spot.all_linearizable),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_to_history_orders_ties_as_overlap() {
        // Two spans with identical stamps on different procs: the
        // merge must emit both invokes before either respond (a tie is
        // overlap, not precedence).
        let spans = vec![
            OpSpan {
                proc: 0,
                op: E14_OP_UPDATE,
                arg: 1,
                resp: 0,
                begin_ns: 10,
                end_ns: 20,
            },
            OpSpan {
                proc: 1,
                op: E14_OP_READ,
                arg: 0,
                resp: 1,
                begin_ns: 10,
                end_ns: 20,
            },
        ];
        let h = spans_to_history(
            &spans,
            |s| {
                if s.op == E14_OP_UPDATE {
                    CounterOp::Inc(1)
                } else {
                    CounterOp::Read
                }
            },
            |s| {
                if s.op == E14_OP_UPDATE {
                    CounterResp::Ack
                } else {
                    CounterResp::Value(s.resp as i64)
                }
            },
        );
        assert!(h.well_formed());
        assert_eq!(h.events().len(), 4);
        assert!(h.events()[0].is_invoke());
        assert!(h.events()[1].is_invoke());
        assert!(!h.events()[2].is_invoke());
        assert!(!h.events()[3].is_invoke());
    }

    #[test]
    fn spans_to_history_monotonicizes_within_proc() {
        // A zero-width span following a tie: per-proc strict bumping
        // must keep program order without panicking or reordering.
        let spans = vec![
            OpSpan {
                proc: 0,
                op: E14_OP_UPDATE,
                arg: 1,
                resp: 0,
                begin_ns: 5,
                end_ns: 5,
            },
            OpSpan {
                proc: 0,
                op: E14_OP_READ,
                arg: 0,
                resp: 1,
                begin_ns: 5,
                end_ns: 5,
            },
        ];
        let h = spans_to_history(&spans, |_| CounterOp::Read, |_| CounterResp::Ack);
        // Program order preserved: invoke, respond, invoke, respond.
        assert!(h.well_formed());
        assert!(h.events()[0].is_invoke());
        assert!(!h.events()[1].is_invoke());
        assert!(h.events()[2].is_invoke());
        assert!(!h.events()[3].is_invoke());
    }

    #[test]
    fn grid_cells_report_flight_columns() {
        for mode in E14_MODES {
            for object in ["counter", "mwreg"] {
                let (row, _) = run_obj_cell(object, mode, 2, true, None);
                assert_eq!(row.hist.count, row.total_ops, "{object}/{mode}");
                assert!(row.ops_per_sec > 0.0);
                // The accounting invariant is exact once threads join.
                assert_eq!(
                    row.events_recorded,
                    row.events_drained + row.events_dropped,
                    "{object}/{mode}"
                );
                match mode {
                    "off" => assert_eq!(row.events_recorded, 0, "{object}"),
                    _ => {
                        assert!(row.events_recorded > 0, "{object}/{mode}");
                        assert!(row.sampled_spans > 0, "{object}/{mode}");
                    }
                }
                if object == "mwreg" {
                    // Every unowned write draws a ticket regardless of
                    // recorder mode.
                    assert_eq!(row.ticket_draws, row.total_ops, "{mode}");
                } else {
                    assert_eq!(row.ticket_draws, 0, "{object}/{mode}");
                }
            }
        }
    }

    #[test]
    fn spot_check_finds_native_histories_linearizable() {
        let opts = ExpOpts {
            quick: true,
            ..ExpOpts::with_seed(7)
        };
        let sc = e14_spot_check(&opts);
        assert!(sc.all_linearizable, "failures: {:?}", sc.failures);
        // 3 objects × 3 seeds, nothing dropped (the ring is sized so
        // the histories are complete).
        assert_eq!(sc.histories, 9);
        assert_eq!(sc.dropped, 0);
        assert!(sc.ops > 0);
    }

    #[test]
    fn gates_report_ratios_and_spotcheck() {
        let mut rows = Vec::new();
        for &threads in &[1usize, 2] {
            for mode in E14_MODES {
                let (row, _) = run_obj_cell("counter", mode, threads, true, None);
                rows.push(row);
            }
        }
        let spot = E14SpotCheck {
            histories: 9,
            ops: 100,
            dropped: 0,
            all_linearizable: true,
            failures: Vec::new(),
        };
        let gates = e14_gates(&rows, &spot, true);
        let parsed = apram_model::json::parse(&gates.to_compact()).unwrap();
        for key in ["sampled_over_off_counter", "always_over_off_counter"] {
            let v = parsed.get(key).unwrap().as_f64().unwrap();
            assert!(v > 0.0, "{key} = {v}");
        }
        assert_eq!(
            parsed.get("spotcheck_histories").unwrap().as_f64().unwrap(),
            9.0
        );
        assert!(matches!(
            parsed.get("spotcheck_all_linearizable"),
            Some(Json::Bool(true))
        ));
    }
}
