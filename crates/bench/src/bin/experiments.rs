//! Regenerate the EXPERIMENTS.md tables and, with `--json`, the
//! machine-readable `BENCH_e<N>.json` reports.
//!
//! ```text
//! experiments run all                        # every experiment
//! experiments run e4 e10 e11 --quick         # a selection
//! experiments run e11 --json out/            # + BENCH_e11.json
//! experiments sweep --config plan.json --out runs/nightly
//! experiments resume runs/nightly            # pick up where it stopped
//! ```
//!
//! Subcommands:
//!
//! * `run <e1 … e11 | explore | all>` — run experiments and print their
//!   EXPERIMENTS.md tables.
//! * `sweep --config PLAN.json --out DIR` — execute a [`SweepPlan`]
//!   grid into a resumable run directory (`--max-cells K` stops after K
//!   new cells, for smoke tests of the resume path).
//! * `resume DIR` — continue the sweep recorded in DIR, skipping every
//!   completed cell.
//!
//! Shared flags (parsed once, honored by every subcommand):
//!
//! * `--seed N` — root seed for all sampled schedules (default 0;
//!   sweeps take their seed from the plan file instead)
//! * `--quick` — shrink grids and sample counts for a smoke run
//! * `--threads N` — worker threads for parallel exploration, sampling
//!   and history checking (default 0 = all available parallelism); also
//!   pins the `explore` benchmark grid to exactly N
//! * `--json [DIR]` — write one `BENCH_e<N>.json` per experiment into
//!   DIR (default `bench-out`)
//! * `--telemetry [DIR]` — write the live-telemetry artifacts into DIR
//!   (default `telemetry-out`): `telemetry.prom` (Prometheus text of the
//!   E4 step histograms), `heartbeat.jsonl` (E6 exploration progress
//!   beats), and `spans.folded` (E9 span trees in collapsed-stack
//!   format, feedable to any flamegraph renderer)
//! * `--forensics DIR` — write the E9 forensics bundle into DIR
//!   (`shrunk_schedule.jsonl`, `witness.json`, `witness.txt`,
//!   `spans.json`; see EXPERIMENTS.md for the schema)
//!
//! A subcommand is required: the historical pre-subcommand spellings
//! (`experiments e4`, `experiments --e4`) are gone.

use apram_bench::*;
use apram_model::Json;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::Instant;

const KNOWN: [&str; 16] = [
    "e1", "e2", "e3", "e4", "e4b", "e5", "e6", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15", "explore",
];

/// Which subcommand was requested.
enum Cmd {
    /// `run <names>`.
    Run,
    /// `sweep --config PLAN --out DIR`.
    Sweep { config: PathBuf, out: PathBuf },
    /// `resume DIR`.
    Resume { dir: PathBuf },
}

struct Cli {
    cmd: Cmd,
    names: Vec<String>,
    opts: ExpOpts,
    json_dir: Option<PathBuf>,
    telemetry_dir: Option<PathBuf>,
    forensics_dir: Option<PathBuf>,
    max_cells: Option<usize>,
}

impl Cli {
    fn want(&self, name: &str) -> bool {
        self.names.is_empty() || self.names.iter().any(|a| a == name)
    }
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        cmd: Cmd::Run,
        names: Vec::new(),
        opts: ExpOpts::default(),
        json_dir: None,
        telemetry_dir: None,
        forensics_dir: None,
        max_cells: None,
    };
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Subcommand dispatch on the first token; anything else is an
    // error (the old pre-subcommand grammar is gone).
    let mut sweep_config: Option<PathBuf> = None;
    let mut sweep_out: Option<PathBuf> = None;
    let mut resume_dir: Option<PathBuf> = None;
    match args.first().map(String::as_str) {
        Some("run") => {
            args.remove(0);
        }
        Some("sweep") => {
            cli.cmd = Cmd::Sweep {
                config: PathBuf::new(),
                out: PathBuf::new(),
            };
            args.remove(0);
        }
        Some("resume") => {
            cli.cmd = Cmd::Resume {
                dir: PathBuf::new(),
            };
            args.remove(0);
        }
        Some(tok) if tok != "--help" && tok != "-h" => {
            usage(&format!(
                "unknown subcommand '{tok}' (want run|sweep|resume)"
            ));
        }
        _ => {}
    }
    let in_sweep = matches!(cli.cmd, Cmd::Sweep { .. });
    let in_resume = matches!(cli.cmd, Cmd::Resume { .. });

    // A token is a directory operand (not a fresh flag or experiment
    // name) — lets `--json` / `--telemetry` take their DIR optionally.
    let is_dir_operand = |tok: &String| !tok.starts_with('-') && !KNOWN.contains(&tok.as_str());
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        match arg.as_str() {
            "--quick" => cli.opts.quick = true,
            "--seed" => {
                let v = args.get(i).unwrap_or_else(|| usage("--seed needs a value"));
                i += 1;
                cli.opts.seed = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad --seed value '{v}'")));
            }
            "--threads" => {
                let v = args
                    .get(i)
                    .unwrap_or_else(|| usage("--threads needs a value"));
                i += 1;
                cli.opts.threads = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad --threads value '{v}'")));
            }
            "--json" => {
                cli.json_dir = Some(match args.get(i) {
                    Some(tok) if is_dir_operand(tok) => {
                        i += 1;
                        PathBuf::from(tok)
                    }
                    _ => PathBuf::from("bench-out"),
                });
            }
            "--telemetry" => {
                cli.telemetry_dir = Some(match args.get(i) {
                    Some(tok) if is_dir_operand(tok) => {
                        i += 1;
                        PathBuf::from(tok)
                    }
                    _ => PathBuf::from("telemetry-out"),
                });
            }
            "--forensics" => {
                let v = args
                    .get(i)
                    .unwrap_or_else(|| usage("--forensics needs a directory"));
                i += 1;
                cli.forensics_dir = Some(PathBuf::from(v));
            }
            "--config" if in_sweep => {
                let v = args
                    .get(i)
                    .unwrap_or_else(|| usage("--config needs a plan file"));
                i += 1;
                sweep_config = Some(PathBuf::from(v));
            }
            "--out" if in_sweep => {
                let v = args
                    .get(i)
                    .unwrap_or_else(|| usage("--out needs a directory"));
                i += 1;
                sweep_out = Some(PathBuf::from(v));
            }
            "--max-cells" if in_sweep || in_resume => {
                let v = args
                    .get(i)
                    .unwrap_or_else(|| usage("--max-cells needs a count"));
                i += 1;
                cli.max_cells = Some(
                    v.parse()
                        .unwrap_or_else(|_| usage(&format!("bad --max-cells value '{v}'"))),
                );
            }
            "--help" | "-h" => usage(""),
            name if !name.starts_with('-') => {
                if in_resume {
                    if resume_dir.is_some() {
                        usage("resume takes exactly one run directory");
                    }
                    resume_dir = Some(PathBuf::from(name));
                } else if in_sweep {
                    usage(&format!("sweep takes no positional operand '{name}'"));
                } else if name == "all" {
                    // `run all` = no filter.
                } else if KNOWN.contains(&name) {
                    cli.names.push(name.to_string());
                } else {
                    usage(&format!("unknown experiment '{name}'"));
                }
            }
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    match &mut cli.cmd {
        Cmd::Run => {}
        Cmd::Sweep { config, out } => {
            *config = sweep_config.unwrap_or_else(|| usage("sweep requires --config PLAN.json"));
            *out = sweep_out.unwrap_or_else(|| usage("sweep requires --out DIR"));
        }
        Cmd::Resume { dir } => {
            *dir = resume_dir.unwrap_or_else(|| usage("resume requires a run directory"));
        }
    }
    cli
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: experiments run [e1 e2 e3 e4 e4b e5 e6 e8 e9 e10 e11 e12 e13 e14 e15 explore | all] \
         [--seed N] [--quick] [--threads N] [--json [DIR]] \
         [--telemetry [DIR]] [--forensics DIR]\n\
         \x20      experiments sweep --config PLAN.json --out DIR [--max-cells K] [--threads N]\n\
         \x20      experiments resume DIR [--max-cells K] [--threads N]"
    );
    exit(if err.is_empty() { 0 } else { 2 })
}

/// Execute `sweep` / `resume` and print the outcome summary.
fn run_sweep_cmd(cli: &Cli) -> ! {
    let sweep_opts = SweepOpts {
        threads: cli.opts.threads,
        max_cells: cli.max_cells,
        every: std::time::Duration::from_millis(500),
    };
    let (result, dir) = match &cli.cmd {
        Cmd::Sweep { config, out } => {
            let text = std::fs::read_to_string(config).unwrap_or_else(|e| {
                eprintln!("error: cannot read {}: {e}", config.display());
                exit(1);
            });
            let plan = SweepPlan::from_json(&text).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            });
            (run_sweep(&plan, out, &sweep_opts), out.clone())
        }
        Cmd::Resume { dir } => (resume_sweep(dir, &sweep_opts), dir.clone()),
        Cmd::Run => unreachable!("run is handled by main"),
    };
    match result {
        Ok(outcome) => {
            println!(
                "sweep {}: {} cells total, {} skipped (already complete), {} run{}",
                dir.display(),
                outcome.total,
                outcome.skipped,
                outcome.completed,
                if outcome.done() {
                    "; sweep complete"
                } else {
                    "; interrupted (resume to continue)"
                },
            );
            exit(0)
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1)
        }
    }
}

/// Write one telemetry artifact, creating DIR as needed.
fn write_artifact(dir: &Path, name: &str, contents: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        exit(1);
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("error: cannot write {}: {e}", path.display());
        exit(1);
    }
    eprintln!("wrote {}", path.display());
}

/// Write `BENCH_<name>.json` holding `rows` plus the run parameters and
/// wall-clock, when `--json` was given.
fn emit_report(cli: &Cli, name: &str, title: &str, rows: Json, started: Instant) {
    emit_report_with(cli, name, title, rows, Vec::new(), started)
}

/// [`emit_report`] with extra top-level sections appended after `rows`
/// (E4 uses this for its `distributions` tables).
fn emit_report_with(
    cli: &Cli,
    name: &str,
    title: &str,
    rows: Json,
    extra: Vec<(&str, Json)>,
    started: Instant,
) {
    let Some(dir) = &cli.json_dir else { return };
    let mut fields = vec![
        ("experiment", Json::Str(name.into())),
        ("title", Json::Str(title.into())),
        ("seed", Json::UInt(cli.opts.seed)),
        ("quick", Json::Bool(cli.opts.quick)),
        (
            "wall_clock_secs",
            Json::Float(started.elapsed().as_secs_f64()),
        ),
        ("rows", rows),
    ];
    fields.extend(extra);
    let doc = Json::obj(fields);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        exit(1);
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, doc.to_pretty(2)) {
        eprintln!("error: cannot write {}: {e}", path.display());
        exit(1);
    }
    eprintln!("wrote {}", path.display());
}

fn counts(pair: (u64, u64)) -> Json {
    Json::obj([
        ("reads", Json::UInt(pair.0)),
        ("writes", Json::UInt(pair.1)),
    ])
}

/// Write the E9 forensics bundle: the shrunk schedule as JSONL (a report
/// line followed by one line per step), the witness explanation as JSON
/// and rendered text, and both span trees.
fn write_forensics(dir: &Path, r: &E9Report) {
    let shrink = r.explore.violation.as_ref().expect("e9 always violates");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        exit(1);
    }
    let mut jsonl = shrink.to_json().to_compact();
    jsonl.push('\n');
    for (i, &p) in shrink.schedule.iter().enumerate() {
        jsonl.push_str(
            &Json::obj([
                ("step", Json::UInt(i as u64)),
                ("proc", Json::UInt(p as u64)),
            ])
            .to_compact(),
        );
        jsonl.push('\n');
    }
    let spans = Json::obj([
        (
            "explore",
            r.explore.spans.as_ref().expect("spans traced").to_json(),
        ),
        ("check", r.check_spans.to_json()),
    ]);
    for (name, contents) in [
        ("shrunk_schedule.jsonl", jsonl),
        ("witness.json", r.explanation.to_json().to_pretty(2)),
        ("witness.txt", r.rendered.clone()),
        ("spans.json", spans.to_pretty(2)),
    ] {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("error: cannot write {}: {e}", path.display());
            exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let cli = parse_cli();
    if !matches!(cli.cmd, Cmd::Run) {
        run_sweep_cmd(&cli);
    }
    let opts = cli.opts;

    if cli.want("e1") {
        let started = Instant::now();
        println!("## E1 — Theorem 5 upper bound (approximate agreement steps)\n");
        let data = e1_rows(&opts);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{}", r.delta_over_eps),
                    r.measured_worst.to_string(),
                    r.bound.to_string(),
                    format!("{:.1}", r.per_round),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "Δ/ε",
                    "measured worst steps",
                    "Theorem 5 bound",
                    "steps / log₂(Δ/ε)"
                ],
                &rows
            )
        );
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("n", Json::UInt(r.n as u64)),
                        ("delta_over_eps", Json::Float(r.delta_over_eps)),
                        ("measured_worst_steps", Json::UInt(r.measured_worst)),
                        ("paper_bound", Json::UInt(r.bound)),
                        ("within_bound", Json::Bool(r.measured_worst <= r.bound)),
                    ])
                })
                .collect(),
        );
        emit_report(
            &cli,
            "e1",
            "Theorem 5 upper bound: measured vs (2n+1)·log₂(Δ/ε)+O(n)",
            json,
            started,
        );
    }

    if cli.want("e2") {
        let started = Instant::now();
        println!("## E2 — Lemma 6 adversary lower bound (2 processes)\n");
        let data = e2_rows(if opts.quick { 5 } else { 10 });
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.bound.to_string(),
                    r.forced_confrontations.to_string(),
                    r.forced_steps.to_string(),
                    format!("{:.2e}", r.final_gap),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "k (Δ/ε = 3^k)",
                    "⌊log₃(Δ/ε)⌋",
                    "forced confrontations",
                    "forced steps (max proc)",
                    "final gap"
                ],
                &rows
            )
        );
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("k", Json::UInt(r.k as u64)),
                        ("paper_bound", Json::UInt(r.bound)),
                        ("forced_confrontations", Json::UInt(r.forced_confrontations)),
                        ("forced_steps", Json::UInt(r.forced_steps)),
                        ("final_gap", Json::Float(r.final_gap)),
                        (
                            "meets_bound",
                            Json::Bool(r.forced_confrontations >= r.bound),
                        ),
                    ])
                })
                .collect(),
        );
        emit_report(
            &cli,
            "e2",
            "Lemma 6 adversary lower bound: forced vs ⌊log₃(Δ/ε)⌋",
            json,
            started,
        );
    }

    if cli.want("e3") {
        let started = Instant::now();
        println!("## E3 — the bounded wait-free hierarchy (Theorems 7–8)\n");
        let data = e3_hierarchy(if opts.quick { 4 } else { 8 });
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    format!("{:.2e}", r.eps),
                    r.lower_bound.to_string(),
                    r.forced_confrontations.to_string(),
                    r.forced_steps.to_string(),
                    r.measured_upper.to_string(),
                    r.theorem5_bound.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "k",
                    "ε",
                    "lower bound k",
                    "forced confrontations",
                    "forced steps",
                    "measured K (worst)",
                    "Theorem 5 bound"
                ],
                &rows
            )
        );
        println!("### E3b — Theorem 8: unbounded range defeats any bound (ε = 1)\n");
        let unbounded = e3_unbounded();
        let rows: Vec<Vec<String>> = unbounded
            .iter()
            .map(|(d, s)| vec![format!("{d}"), s.to_string()])
            .collect();
        println!("{}", markdown_table(&["Δ", "forced steps"], &rows));
        let json = Json::obj([
            (
                "hierarchy",
                Json::Arr(
                    data.iter()
                        .map(|r| {
                            Json::obj([
                                ("k", Json::UInt(r.k as u64)),
                                ("eps", Json::Float(r.eps)),
                                ("paper_lower_bound", Json::UInt(r.lower_bound)),
                                ("forced_confrontations", Json::UInt(r.forced_confrontations)),
                                ("forced_steps", Json::UInt(r.forced_steps)),
                                ("measured_upper", Json::UInt(r.measured_upper)),
                                ("paper_upper_bound", Json::UInt(r.theorem5_bound)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "unbounded",
                Json::Arr(
                    unbounded
                        .iter()
                        .map(|&(d, s)| {
                            Json::obj([("delta", Json::Float(d)), ("forced_steps", Json::UInt(s))])
                        })
                        .collect(),
                ),
            ),
        ]);
        emit_report(
            &cli,
            "e3",
            "Theorems 7–8: the bounded wait-free hierarchy",
            json,
            started,
        );
    }

    if cli.want("e4") {
        let started = Instant::now();
        println!("## E4 — §6.2 Scan operation counts\n");
        // Every n in 2..=8 is measured (the paper-bound acceptance
        // grid); the larger sizes confirm the quadratic/linear shape.
        let ns: Vec<usize> = if opts.quick {
            vec![2, 3, 4]
        } else {
            (2..=8).chain([16, 32]).collect()
        };
        let data = e4_rows(&ns);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{}/{}", r.literal.0, r.literal.1),
                    format!("{}/{}", r.literal_claim.0, r.literal_claim.1),
                    format!("{}/{}", r.optimized.0, r.optimized.1),
                    format!("{}/{}", r.optimized_claim.0, r.optimized_claim.1),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "literal reads/writes",
                    "paper n²+n+1 / n+2",
                    "optimized reads/writes",
                    "paper n²−1 / n+1"
                ],
                &rows
            )
        );
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("n", Json::UInt(r.n as u64)),
                        ("literal", counts(r.literal)),
                        ("paper_literal", counts(r.literal_claim)),
                        ("optimized", counts(r.optimized)),
                        ("paper_optimized", counts(r.optimized_claim)),
                        (
                            "matches_paper",
                            Json::Bool(
                                r.literal == r.literal_claim && r.optimized == r.optimized_claim,
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        println!("### E4 telemetry — per-op step distributions vs analytic bounds\n");
        let dist = step_distributions(&opts);
        let drows: Vec<Vec<String>> = dist
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.op.clone(),
                    r.metric.into(),
                    r.n.to_string(),
                    r.hist.count.to_string(),
                    r.hist.p50().to_string(),
                    r.hist.p99().to_string(),
                    r.hist.max.to_string(),
                    r.bound.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
                    r.within_bound()
                        .map(|b| if b { "yes" } else { "NO" }.into())
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "op",
                    "metric",
                    "n",
                    "count",
                    "p50",
                    "p99",
                    "max",
                    "paper bound",
                    "within"
                ],
                &drows
            )
        );
        let dist_json = Json::Arr(dist.rows.iter().map(DistRow::to_json).collect());
        emit_report_with(
            &cli,
            "e4",
            "§6.2 Scan operation counts: measured vs n²+n+1/n+2 and n²−1/n+1",
            json,
            vec![("distributions", dist_json)],
            started,
        );
        if let Some(dir) = &cli.telemetry_dir {
            let prom = dist.registry.to_prometheus();
            apram_model::validate_prometheus(&prom).expect("generated Prometheus text must parse");
            write_artifact(dir, "telemetry.prom", &prom);
        }
    }

    // E4b rides along with E4 when no explicit selection was given, and
    // can also be requested on its own.
    if cli.want("e4b") {
        let started = Instant::now();
        println!("### E4b — lattice scan vs Afek et al. snapshot (reads per scan)\n");
        let ns: &[usize] = if opts.quick { &[2, 4] } else { &[2, 4, 8] };
        let data = e4b_rows(ns);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.lattice_reads.to_string(),
                    r.afek_quiet_reads.to_string(),
                    r.afek_contended_reads.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "lattice scan (always)",
                    "Afek quiet (2n)",
                    "Afek under interposing writer"
                ],
                &rows
            )
        );
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("n", Json::UInt(r.n as u64)),
                        ("lattice_reads", Json::UInt(r.lattice_reads)),
                        ("afek_quiet_reads", Json::UInt(r.afek_quiet_reads)),
                        ("afek_contended_reads", Json::UInt(r.afek_contended_reads)),
                    ])
                })
                .collect(),
        );
        emit_report(
            &cli,
            "e4b",
            "Lattice scan vs Afek et al. snapshot, reads per scan",
            json,
            started,
        );
    }

    if cli.want("e5") {
        let started = Instant::now();
        println!("## E5 — universal construction overhead per operation\n");
        let ns: &[usize] = if opts.quick {
            &[2, 3, 4]
        } else {
            &[2, 3, 4, 8, 12, 16]
        };
        let data = e5_rows(ns);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.reads.to_string(),
                    r.reads_claim.to_string(),
                    r.writes.to_string(),
                    r.writes_claim.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "measured reads/op",
                    "2(n²−1)",
                    "measured writes/op",
                    "2(n+1)"
                ],
                &rows
            )
        );
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("n", Json::UInt(r.n as u64)),
                        ("measured", counts((r.reads, r.writes))),
                        ("paper", counts((r.reads_claim, r.writes_claim))),
                        (
                            "matches_paper",
                            Json::Bool(r.reads == r.reads_claim && r.writes == r.writes_claim),
                        ),
                    ])
                })
                .collect(),
        );
        emit_report(
            &cli,
            "e5",
            "Universal construction overhead: measured vs 2(n²−1) reads / 2(n+1) writes",
            json,
            started,
        );
    }

    if cli.want("e6") {
        let started = Instant::now();
        println!("## E6 — exhaustive linearizability verification\n");
        // With `--telemetry`, every E6 exploration streams progress
        // beats (plus one final beat each) into heartbeat.jsonl.
        let beats = cli.telemetry_dir.as_ref().map(|_| {
            let (sink, buf) = apram_model::telemetry::buffer_sink();
            (
                apram_model::Heartbeat::shared(std::time::Duration::from_millis(100), sink),
                buf,
            )
        });
        let s = e6_summary_with(&opts, beats.as_ref().map(|(hb, _)| hb.clone()));
        if let (Some(dir), Some((_, buf))) = (&cli.telemetry_dir, &beats) {
            let jsonl =
                String::from_utf8(buf.lock().unwrap().clone()).expect("heartbeat JSONL is UTF-8");
            write_artifact(dir, "heartbeat.jsonl", &jsonl);
        }
        let mut rows: Vec<Vec<String>> = s
            .per_object()
            .iter()
            .map(|(name, st)| {
                vec![
                    (*name).into(),
                    st.runs.to_string(),
                    format!("{:.1}%", 100.0 * st.replay_ratio()),
                    st.max_depth_reached.to_string(),
                    "0".into(),
                ]
            })
            .collect();
        rows.push(vec![
            "total histories checked".into(),
            s.histories_checked.to_string(),
            "-".into(),
            "-".into(),
            "0".into(),
        ]);
        println!(
            "{}",
            markdown_table(
                &[
                    "object",
                    "schedules explored",
                    "replay overhead",
                    "max depth",
                    "violations"
                ],
                &rows
            )
        );
        let json = Json::obj([
            (
                "objects",
                Json::Arr(
                    s.per_object()
                        .iter()
                        .map(|(name, st)| {
                            Json::obj([
                                ("object", Json::Str((*name).into())),
                                ("schedules_explored", Json::UInt(st.runs)),
                                ("exhausted", Json::Bool(st.exhausted)),
                                ("truncated", Json::Bool(st.truncated)),
                                ("executed_steps", Json::UInt(st.executed_steps)),
                                ("replayed_steps", Json::UInt(st.replayed_steps)),
                                ("replay_ratio", Json::Float(st.replay_ratio())),
                                ("max_depth_reached", Json::UInt(st.max_depth_reached as u64)),
                                ("violations", Json::UInt(0)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("histories_checked", Json::UInt(s.histories_checked)),
        ]);
        emit_report(
            &cli,
            "e6",
            "Exhaustive linearizability verification (Theorems 26 and 33)",
            json,
            started,
        );
    }

    if cli.want("e8") {
        let started = Instant::now();
        println!("## E8 — ablations of Figure 2\n");
        let data = e8_rows(&opts);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.variant.to_string(),
                    r.mode.to_string(),
                    r.config.clone(),
                    r.search.clone(),
                    r.runs.to_string(),
                    match &r.violation {
                        Some(ys) => format!("VIOLATION {ys:?}"),
                        None => "safe".into(),
                    },
                    r.spread_over_eps
                        .map(|x| format!("{x:.2}"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "variant",
                    "scan",
                    "config",
                    "search",
                    "runs",
                    "safety",
                    "max spread/ε"
                ],
                &rows
            )
        );
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("variant", Json::Str(r.variant.into())),
                        ("scan_mode", Json::Str(r.mode.into())),
                        ("config", Json::Str(r.config.clone())),
                        ("search", Json::Str(r.search.clone())),
                        ("runs", Json::UInt(r.runs)),
                        (
                            "violation",
                            match &r.violation {
                                Some(ys) => Json::Arr(ys.iter().map(|&y| Json::Float(y)).collect()),
                                None => Json::Null,
                            },
                        ),
                        (
                            "max_spread_over_eps",
                            r.spread_over_eps.map(Json::Float).unwrap_or(Json::Null),
                        ),
                    ])
                })
                .collect(),
        );
        emit_report(
            &cli,
            "e8",
            "Figure 2 ablations: adaptive termination is unsound for n ≥ 3",
            json,
            started,
        );
    }

    if cli.want("e9") {
        let started = Instant::now();
        println!("## E9 — failure forensics (naive-collect negative control)\n");
        let r = e9_forensics(&opts);
        let shrink = r.explore.violation.as_ref().expect("e9 always violates");
        let rows: Vec<Vec<String>> = r
            .rows
            .iter()
            .map(|row| {
                vec![
                    row.op.to_string(),
                    row.ops.to_string(),
                    row.observed_steps.to_string(),
                    row.bound.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(&["operation", "ops", "observed steps", "paper cost"], &rows)
        );
        println!(
            "schedule shrunk {} → {} steps ({} candidate re-executions, {} adopted); \
             final check explored {} nodes; {} histories checked in total\n",
            shrink.original.len(),
            shrink.schedule.len(),
            shrink.stats.attempts,
            shrink.stats.useful,
            r.check_explored,
            r.histories_checked
        );
        for line in r.rendered.lines() {
            println!("    {line}");
        }
        println!();
        let json = Json::obj([
            (
                "rows",
                Json::Arr(
                    r.rows
                        .iter()
                        .map(|row| {
                            Json::obj([
                                ("op", Json::Str(row.op.into())),
                                ("ops", Json::UInt(row.ops)),
                                ("observed_steps", Json::UInt(row.observed_steps)),
                                ("paper_cost", Json::UInt(row.bound)),
                                ("within_bound", Json::Bool(row.observed_steps <= row.bound)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("shrink", shrink.to_json()),
            ("explanation", r.explanation.to_json()),
            ("check_explored", Json::UInt(r.check_explored)),
            ("histories_checked", Json::UInt(r.histories_checked)),
        ]);
        emit_report(
            &cli,
            "e9",
            "Failure forensics: shrunk counterexample, witness explanation, search spans",
            json,
            started,
        );
        if let Some(dir) = &cli.forensics_dir {
            write_forensics(dir, &r);
        }
        if let Some(dir) = &cli.telemetry_dir {
            // Both E9 span trees in collapsed-stack format — pipe into
            // any flamegraph renderer.
            let mut folded = r.explore.spans.as_ref().expect("spans traced").to_folded();
            folded.push_str(&r.check_spans.to_folded());
            write_artifact(dir, "spans.folded", &folded);
        }
    }

    if cli.want("e10") {
        let started = Instant::now();
        println!("## E10 — wait-freedom certification: the certified (n, f) grid\n");
        let data = e10_rows(&opts);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.object.to_string(),
                    r.n.to_string(),
                    r.f.to_string(),
                    r.depth.to_string(),
                    r.bound.to_string(),
                    r.cert.runs.to_string(),
                    r.cert.crash_branches.to_string(),
                    r.worst_latency().to_string(),
                    if r.cert.passed() {
                        "certified".into()
                    } else {
                        "FAILED".into()
                    },
                    if r.parallel_agrees { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "object",
                    "n",
                    "f",
                    "depth",
                    "step bound",
                    "runs",
                    "crash branches",
                    "worst survivor steps",
                    "verdict",
                    "parallel agrees"
                ],
                &rows
            )
        );
        let lock = data.last().expect("grid includes the negative control");
        if let Some(v) = &lock.cert.violation {
            println!(
                "negative control ({}): {:?}; minimized witness = {} steps, {} crashes\n",
                lock.object,
                v.kind,
                v.report.schedule.len(),
                v.report.crashes.len()
            );
        }
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("object", Json::Str(r.object.into())),
                        ("n", Json::UInt(r.n as u64)),
                        ("f", Json::UInt(r.f as u64)),
                        ("depth", Json::UInt(r.depth as u64)),
                        ("bound", Json::UInt(r.bound)),
                        ("expect_pass", Json::Bool(r.expect_pass)),
                        ("passed", Json::Bool(r.cert.passed())),
                        ("worst_survivor_steps", Json::UInt(r.worst_latency())),
                        ("parallel_agrees", Json::Bool(r.parallel_agrees)),
                        ("certificate", r.cert.to_json()),
                    ])
                })
                .collect(),
        );
        emit_report(
            &cli,
            "e10",
            "Wait-freedom certification: certified (n, f) grid with survivor latency vs f",
            json,
            started,
        );
    }

    if cli.want("e11") {
        let started = Instant::now();
        println!("## E11 — sampled tail latency: step percentiles vs analytic bounds\n");
        let data = e11_rows(&opts);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                let (lo, hi) = r.report.exceed_ci();
                vec![
                    r.object.clone(),
                    r.n.to_string(),
                    r.f.to_string(),
                    r.report.scheduler.clone(),
                    r.report.runs.to_string(),
                    r.report.hist.p50().to_string(),
                    r.report.hist.p99().to_string(),
                    r.report.hist.p999().to_string(),
                    r.report.hist.max.to_string(),
                    r.bound.to_string(),
                    format!("[{lo:.4}, {hi:.4}]"),
                    if r.ok() {
                        if r.expect_within {
                            "within".into()
                        } else {
                            "exceeds (expected)".into()
                        }
                    } else {
                        "UNEXPECTED".to_string()
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "object",
                    "n",
                    "f",
                    "scheduler",
                    "runs",
                    "p50",
                    "p99",
                    "p999",
                    "max",
                    "bound",
                    "exceed 95% CI",
                    "verdict"
                ],
                &rows
            )
        );
        let lock = data.last().expect("grid includes the negative control");
        println!(
            "negative control ({}): sampled exceedance rate {:.3} \
             ({} of {} runs past the reference bound)\n",
            lock.object,
            lock.report.exceed_rate(),
            lock.report.exceedances,
            lock.report.samples,
        );
        emit_report(
            &cli,
            "e11",
            "Sampled tail latency: p50/p99/p999/max survivor steps vs analytic bounds",
            Json::Arr(data.iter().map(E11Row::to_json).collect()),
            started,
        );
    }

    if cli.want("e12") {
        let started = Instant::now();
        println!("## E12 — contention profile: hot cell vs spread, charged step accounting\n");
        let data = e12_rows(&opts);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.object.to_string(),
                    r.workload.to_string(),
                    r.k.to_string(),
                    r.measured_steps.to_string(),
                    format!("{:.1}", r.charged_steps),
                    format!("{:.1}", r.contention_bound()),
                    r.paper_bound.to_string(),
                    format!("{:.2}", r.mean_contention),
                    r.peak_contention.to_string(),
                    r.stall_edges.to_string(),
                    format!("{:.2}", r.collapse_ratio()),
                    if r.ok() {
                        "ok".into()
                    } else {
                        "UNEXPECTED".to_string()
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "object",
                    "workload",
                    "k",
                    "measured",
                    "charged",
                    "contention bound",
                    "paper bound",
                    "mean cont",
                    "peak",
                    "stalls",
                    "collapse",
                    "verdict"
                ],
                &rows
            )
        );
        if let Some(dir) = &cli.telemetry_dir {
            write_artifact(dir, "contention.prom", &e12_heatmap_prometheus(&data));
            let mut heat = e12_heatmap_json(&data).to_compact();
            heat.push('\n');
            write_artifact(dir, "contention_heatmap.json", &heat);
        }
        emit_report(
            &cli,
            "e12",
            "Contention profile: measured vs contention-charged vs worst-case steps, \
             hot cell vs spread workloads",
            Json::Arr(data.iter().map(E12Row::to_json).collect()),
            started,
        );
    }

    if cli.want("e13") {
        let started = Instant::now();
        println!("## E13 — native register-file scaling: threads × objects × tiers\n");
        let data = e13_rows(&opts);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.object.to_string(),
                    r.tier.to_string(),
                    r.threads.to_string(),
                    r.total_ops.to_string(),
                    format!("{:.0}", r.ops_per_sec),
                    r.hist.p50().to_string(),
                    r.hist.p99().to_string(),
                    r.hist.p999().to_string(),
                    r.read_retries.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "object",
                    "tier",
                    "threads",
                    "ops",
                    "ops/sec",
                    "p50 ns",
                    "p99 ns",
                    "p999 ns",
                    "read retries"
                ],
                &rows
            )
        );
        let gates = e13_gates(&data);
        println!("gates: {}\n", gates.to_compact());
        emit_report_with(
            &cli,
            "e13",
            "Native register-file scaling: ops/sec and op-latency percentiles, \
             packed vs buffered vs rwlock-baseline tiers",
            Json::Arr(data.iter().map(E13Row::to_json).collect()),
            vec![("gates", gates)],
            started,
        );
    }

    if cli.want("e14") {
        let started = Instant::now();
        println!("## E14 — flight-recorder overhead and online spot-checks\n");
        let out = e14_run(&opts);
        let rows: Vec<Vec<String>> = out
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.object.to_string(),
                    r.mode.to_string(),
                    r.threads.to_string(),
                    r.total_ops.to_string(),
                    format!("{:.0}", r.ops_per_sec),
                    r.hist.p50().to_string(),
                    r.hist.p99().to_string(),
                    r.events_recorded.to_string(),
                    r.events_dropped.to_string(),
                    r.retry_events.to_string(),
                    r.ticket_draws.to_string(),
                    r.contended_draws.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "object",
                    "mode",
                    "threads",
                    "ops",
                    "ops/sec",
                    "p50 ns",
                    "p99 ns",
                    "events",
                    "dropped",
                    "retry evts",
                    "tickets",
                    "contended"
                ],
                &rows
            )
        );
        let gates = e14_gates(&out.rows, &out.spot, opts.quick);
        println!("gates: {}\n", gates.to_compact());
        if let Some(dir) = &cli.telemetry_dir {
            let mut trace = out.trace.to_compact();
            trace.push('\n');
            write_artifact(dir, "flight.json", &trace);
            write_artifact(dir, "flight.prom", &out.prom);
        }
        emit_report_with(
            &cli,
            "e14",
            "Flight-recorder overhead: recorder off vs 1-in-64 sampling vs always-on, \
             with online linearizability spot-checks of reconstructed native histories",
            Json::Arr(out.rows.iter().map(E14Row::to_json).collect()),
            vec![("gates", gates), ("spot_check", out.spot.to_json())],
            started,
        );
    }

    if cli.want("e15") {
        let started = Instant::now();
        println!("## E15 — serving-layer SLO and offline audit (apram-serve)\n");
        let out = e15_run(&opts);
        let rows: Vec<Vec<String>> = out
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.object.to_string(),
                    r.tenants.to_string(),
                    r.total_ops.to_string(),
                    format!("{:.0}", r.ops_per_sec),
                    r.latency.p50().to_string(),
                    r.latency.p99().to_string(),
                    r.latency.p999().to_string(),
                    r.crash_reconnects.to_string(),
                    if r.completed { "yes" } else { "NO" }.into(),
                    r.audit_histories.to_string(),
                    r.audit_dropped.to_string(),
                    if r.audit_linearizable { "yes" } else { "NO" }.into(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "object",
                    "tenants",
                    "ops",
                    "ops/sec",
                    "p50 ns",
                    "p99 ns",
                    "p999 ns",
                    "reconnects",
                    "completed",
                    "audit hists",
                    "dropped",
                    "linearizable"
                ],
                &rows
            )
        );
        let gates = e15_gates(&out.rows);
        println!("gates: {}\n", gates.to_compact());
        if let Some(dir) = &cli.telemetry_dir {
            apram_model::validate_prometheus(&out.prom)
                .expect("scraped Prometheus text must parse");
            write_artifact(dir, "flight.prom", &out.prom);
        }
        emit_report_with(
            &cli,
            "e15",
            "Serving-layer SLO and offline audit: multi-tenant load with a mid-stream \
             client kill over apram-serve, flight-recorder histories re-checked offline",
            Json::Arr(out.rows.iter().map(E15Row::to_json).collect()),
            vec![("gates", gates)],
            started,
        );
    }

    if cli.want("explore") {
        let started = Instant::now();
        println!("## Exploration throughput (sequential vs parallel explorer)\n");
        let data = explore_bench_rows(&opts);
        let rows: Vec<Vec<String>> = data
            .iter()
            .map(|r| {
                vec![
                    r.engine.to_string(),
                    r.threads.to_string(),
                    r.runs.to_string(),
                    format!("{:.3}", r.wall_secs),
                    format!("{:.0}", r.runs_per_sec),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "engine",
                    "threads",
                    "schedules",
                    "wall secs",
                    "schedules/sec",
                    "speedup vs sequential"
                ],
                &rows
            )
        );
        let json = Json::Arr(
            data.iter()
                .map(|r| {
                    Json::obj([
                        ("engine", Json::Str(r.engine.into())),
                        ("threads", Json::UInt(r.threads as u64)),
                        ("runs", Json::UInt(r.runs)),
                        ("wall_secs", Json::Float(r.wall_secs)),
                        ("runs_per_sec", Json::Float(r.runs_per_sec)),
                        ("speedup", Json::Float(r.speedup)),
                    ])
                })
                .collect(),
        );
        emit_report(
            &cli,
            "explore",
            "Exploration throughput: schedules/sec of the parallel explorer by thread count",
            json,
            started,
        );
    }
}
