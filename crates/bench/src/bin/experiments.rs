//! Regenerate the EXPERIMENTS.md tables.
//!
//! ```text
//! cargo run -p apram-bench --bin experiments --release            # all
//! cargo run -p apram-bench --bin experiments --release -- e2 e4  # some
//! ```

use apram_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if want("e1") {
        println!("## E1 — Theorem 5 upper bound (approximate agreement steps)\n");
        let rows: Vec<Vec<String>> = e1_rows()
            .into_iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{}", r.delta_over_eps),
                    r.measured_worst.to_string(),
                    r.bound.to_string(),
                    format!("{:.1}", r.per_round),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "Δ/ε",
                    "measured worst steps",
                    "Theorem 5 bound",
                    "steps / log₂(Δ/ε)"
                ],
                &rows
            )
        );
    }

    if want("e2") {
        println!("## E2 — Lemma 6 adversary lower bound (2 processes)\n");
        let rows: Vec<Vec<String>> = e2_rows(10)
            .into_iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.bound.to_string(),
                    r.forced_confrontations.to_string(),
                    r.forced_steps.to_string(),
                    format!("{:.2e}", r.final_gap),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "k (Δ/ε = 3^k)",
                    "⌊log₃(Δ/ε)⌋",
                    "forced confrontations",
                    "forced steps (max proc)",
                    "final gap"
                ],
                &rows
            )
        );
    }

    if want("e3") {
        println!("## E3 — the bounded wait-free hierarchy (Theorems 7–8)\n");
        let rows: Vec<Vec<String>> = e3_hierarchy(8)
            .into_iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    format!("{:.2e}", r.eps),
                    r.lower_bound.to_string(),
                    r.forced_confrontations.to_string(),
                    r.forced_steps.to_string(),
                    r.measured_upper.to_string(),
                    r.theorem5_bound.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "k",
                    "ε",
                    "lower bound k",
                    "forced confrontations",
                    "forced steps",
                    "measured K (worst)",
                    "Theorem 5 bound"
                ],
                &rows
            )
        );
        println!("### E3b — Theorem 8: unbounded range defeats any bound (ε = 1)\n");
        let rows: Vec<Vec<String>> = e3_unbounded()
            .into_iter()
            .map(|(d, s)| vec![format!("{d}"), s.to_string()])
            .collect();
        println!("{}", markdown_table(&["Δ", "forced steps"], &rows));
    }

    if want("e4") {
        println!("## E4 — §6.2 Scan operation counts\n");
        let rows: Vec<Vec<String>> = e4_rows(&[2, 3, 4, 8, 16, 32])
            .into_iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    format!("{}/{}", r.literal.0, r.literal.1),
                    format!("{}/{}", r.literal_claim.0, r.literal_claim.1),
                    format!("{}/{}", r.optimized.0, r.optimized.1),
                    format!("{}/{}", r.optimized_claim.0, r.optimized_claim.1),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "literal reads/writes",
                    "paper n²+n+1 / n+2",
                    "optimized reads/writes",
                    "paper n²−1 / n+1"
                ],
                &rows
            )
        );
    }

    if want("e4") {
        println!("### E4b — lattice scan vs Afek et al. snapshot (reads per scan)\n");
        let rows: Vec<Vec<String>> = e4b_rows(&[2, 4, 8])
            .into_iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.lattice_reads.to_string(),
                    r.afek_quiet_reads.to_string(),
                    r.afek_contended_reads.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "lattice scan (always)",
                    "Afek quiet (2n)",
                    "Afek under interposing writer"
                ],
                &rows
            )
        );
    }

    if want("e5") {
        println!("## E5 — universal construction overhead per operation\n");
        let rows: Vec<Vec<String>> = e5_rows(&[2, 3, 4, 8, 12, 16])
            .into_iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.reads.to_string(),
                    r.reads_claim.to_string(),
                    r.writes.to_string(),
                    r.writes_claim.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "n",
                    "measured reads/op",
                    "2(n²−1)",
                    "measured writes/op",
                    "2(n+1)"
                ],
                &rows
            )
        );
    }

    if want("e6") {
        println!("## E6 — exhaustive linearizability verification\n");
        let s = e6_summary();
        println!(
            "{}",
            markdown_table(
                &["object", "schedules explored", "violations"],
                &[
                    vec![
                        "atomic snapshot (2 procs)".into(),
                        s.snapshot_runs.to_string(),
                        "0".into()
                    ],
                    vec![
                        "universal counter (2 procs)".into(),
                        s.universal_runs.to_string(),
                        "0".into()
                    ],
                    vec![
                        "Afek et al. snapshot (2 procs)".into(),
                        s.afek_runs.to_string(),
                        "0".into()
                    ],
                    vec![
                        "MW register (2 procs, full depth)".into(),
                        s.mwreg_runs.to_string(),
                        "0".into()
                    ],
                    vec![
                        "total histories checked".into(),
                        s.histories_checked.to_string(),
                        "0".into()
                    ],
                ]
            )
        );
    }

    if want("e8") {
        println!("## E8 — ablations of Figure 2\n");
        let rows: Vec<Vec<String>> = e8_rows()
            .into_iter()
            .map(|r| {
                vec![
                    r.variant.to_string(),
                    r.mode.to_string(),
                    r.config,
                    r.search.to_string(),
                    r.runs.to_string(),
                    match r.violation {
                        Some(ys) => format!("VIOLATION {ys:?}"),
                        None => "safe".into(),
                    },
                    r.spread_over_eps
                        .map(|x| format!("{x:.2}"))
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "variant",
                    "scan",
                    "config",
                    "search",
                    "runs",
                    "safety",
                    "max spread/ε"
                ],
                &rows
            )
        );
    }
}
