//! E13 — native register-file scaling: ops/sec and op-latency
//! percentiles across threads × objects × register tiers.
//!
//! The paper's cost model counts register accesses; E13 measures what
//! those accesses cost *on hardware* now that the native backend's
//! registers are genuinely non-blocking. The grid crosses:
//!
//! * **threads** — 1/2/4/8/16/32 real OS threads;
//! * **objects** — the striped counter (word registers, one write per
//!   inc), the direct max-register (a Section 6 scan per op), the Afek
//!   et al. bounded snapshot, and the last-writer-wins map through the
//!   Figure 4 universal construction (wide `Clone` registers);
//! * **tiers** — `packed` (one `AtomicU64` per register; word-packable
//!   objects only), `buffered` (announce/validate multi-slot cells, any
//!   `Clone` value), and `rwlock` (the pre-register-file backend, kept
//!   behind the `rwlock-baseline` feature purely as this baseline).
//!
//! Each cell reports throughput (ops/sec over the joined wall-clock)
//! and per-op latency p50/p99/p999 in nanoseconds through the shared
//! [`StepHistogram`], plus the buffered tier's reader-retry count (how
//! often a publish landed inside a reader's two-instruction announce
//! window — the protocol's only non-wait-free event).
//!
//! The accompanying gates (emitted into `BENCH_e13.json` and enforced
//! in CI on the quick grid via `scripts/compare_bench.py --e13-gate`):
//! the packed counter must beat the rwlock baseline at 8 threads, and —
//! on machines with real parallelism — 8-thread packed-counter
//! throughput must exceed 1-thread throughput. The report records
//! `available_parallelism` so the scaling gate can stand down on
//! single-core runners instead of asserting the impossible.

use crate::ExpOpts;
use apram_model::telemetry::HistogramSnapshot;
use apram_model::{AtomicPackable, Json, NativeCtx, NativeMemory, StepHistogram};
use apram_objects::lwwmap::{LwwMapSpec, MapOp};
use apram_objects::maxreg::DirectMaxRegister;
use apram_objects::striped::StripedCounter;
use apram_snapshot::afek::AfekSnapshot;
use std::sync::Barrier;
use std::time::Instant;

/// The E13 object names, in emission order.
pub const E13_OBJECTS: [&str; 4] = ["counter", "maxreg", "afek", "lwwmap"];

/// The E13 register tiers, in emission order.
pub const E13_TIERS: [&str; 3] = ["packed", "buffered", "rwlock"];

/// One cell of the E13 grid.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// Object name (one of [`E13_OBJECTS`]).
    pub object: &'static str,
    /// Register tier (one of [`E13_TIERS`]).
    pub tier: &'static str,
    /// Concurrent OS threads (= processes).
    pub threads: usize,
    /// Total operations across all threads (one op = update + read).
    pub total_ops: u64,
    /// Wall-clock of the measured region (barrier release to last join).
    pub elapsed_secs: f64,
    /// `total_ops / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Per-op latency distribution in nanoseconds.
    pub hist: HistogramSnapshot,
    /// Buffered-tier reader validation retries (0 on other tiers).
    pub read_retries: u64,
}

impl E13Row {
    /// JSON record for `BENCH_e13.json`. Wall-clock-derived fields
    /// (`elapsed_secs`, `ops_per_sec`, the `*_ns` percentiles) are
    /// volatile across runs; `scripts/compare_bench.py` excludes them
    /// from byte diffs and gates on their ratios instead.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("object", Json::Str(self.object.into())),
            ("tier", Json::Str(self.tier.into())),
            ("threads", Json::UInt(self.threads as u64)),
            ("total_ops", Json::UInt(self.total_ops)),
            ("elapsed_secs", Json::Float(self.elapsed_secs)),
            ("ops_per_sec", Json::Float(self.ops_per_sec)),
            ("p50_ns", Json::UInt(self.hist.p50())),
            ("p99_ns", Json::UInt(self.hist.p99())),
            ("p999_ns", Json::UInt(self.hist.p999())),
            ("max_ns", Json::UInt(self.hist.max)),
            ("mean_ns", Json::Float(self.hist.mean())),
            ("read_retries", Json::UInt(self.read_retries)),
        ])
    }
}

/// The thread grid (always includes 1 and 8, which the gates compare).
pub fn e13_threads(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 2, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    }
}

/// Per-thread operations for one cell, scaled so a cell's total work is
/// roughly constant across thread counts (an op's cost also grows with
/// `n` for the scan-based objects, hence the per-object bases).
fn ops_per_thread(object: &str, threads: usize, quick: bool) -> u64 {
    let (base, floor) = match object {
        // The counter is the object the CI gates ratio on, so its quick
        // budget stays large enough to average out scheduler noise.
        "counter" => (if quick { 16_000 } else { 48_000 }, 100),
        "maxreg" => (if quick { 600 } else { 6_000 }, 20),
        "afek" => (if quick { 300 } else { 3_000 }, 10),
        // The universal construction replays the whole history per op;
        // its cost is quadratic in total ops, so the budget is tiny.
        "lwwmap" => (if quick { 48 } else { 96 }, 3),
        other => panic!("unknown E13 object '{other}'"),
    };
    (base / threads as u64).max(floor)
}

/// Run one timed cell: `threads` threads, per-thread state from
/// `setup`, then `ops` iterations of `op`, each op's latency recorded
/// in nanoseconds. Setup is excluded from the measurement by a barrier.
fn run_cell<T, S>(
    mem: &NativeMemory<T>,
    threads: usize,
    ops: u64,
    setup: impl Fn(usize) -> S + Sync,
    op: impl Fn(&mut S, &mut NativeCtx<T>, u64) + Sync,
) -> (f64, HistogramSnapshot)
where
    T: Clone + Send + Sync + 'static,
    S: Send,
{
    let hist = StepHistogram::new();
    let barrier = Barrier::new(threads + 1);
    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let mem = mem.clone();
            let (barrier, hist, setup, op) = (&barrier, &hist, &setup, &op);
            s.spawn(move || {
                let mut ctx = mem.ctx(t);
                let mut state = setup(t);
                barrier.wait();
                for k in 0..ops {
                    let t0 = Instant::now();
                    op(&mut state, &mut ctx, k);
                    hist.record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
        // Start the clock *before* releasing the barrier: if main
        // started it after, a worker scheduled ahead of main's wake-up
        // (guaranteed on a single-core host) could finish its whole
        // loop before the clock ever started, under-measuring the cell
        // by orders of magnitude.
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    (start.elapsed().as_secs_f64(), hist.snapshot())
}

/// A memory on `tier` for a word-packable register type (all three
/// tiers apply).
fn mem_packable<T: AtomicPackable + Clone>(
    tier: &str,
    n: usize,
    regs: Vec<T>,
    owners: Vec<usize>,
) -> NativeMemory<T> {
    match tier {
        "packed" => NativeMemory::new_packed(n, regs).with_owners(owners),
        _ => mem_wide(tier, n, regs, owners),
    }
}

/// A memory on `tier` for an arbitrary `Clone` register type (the
/// packed tier does not apply).
fn mem_wide<T: Clone>(tier: &str, n: usize, regs: Vec<T>, owners: Vec<usize>) -> NativeMemory<T> {
    match tier {
        "buffered" => NativeMemory::new(n, regs).with_owners(owners),
        "rwlock" => NativeMemory::new_locked(n, regs).with_owners(owners),
        other => panic!("tier '{other}' not applicable here"),
    }
}

fn finish(
    object: &'static str,
    tier: &'static str,
    threads: usize,
    ops: u64,
    elapsed: f64,
    hist: HistogramSnapshot,
    retries: u64,
) -> E13Row {
    let total_ops = ops * threads as u64;
    E13Row {
        object,
        tier,
        threads,
        total_ops,
        elapsed_secs: elapsed,
        ops_per_sec: total_ops as f64 / elapsed.max(1e-9),
        hist,
        read_retries: retries,
    }
}

/// One cell: striped counter (word registers; one write per inc, one
/// collect per read).
fn counter_cell(tier: &'static str, threads: usize, quick: bool) -> E13Row {
    let ops = ops_per_thread("counter", threads, quick);
    let c = StripedCounter::new(threads);
    let mem = mem_packable(tier, threads, c.registers(), c.owners());
    let (elapsed, hist) = run_cell(
        &mem,
        threads,
        ops,
        |_| c.handle(),
        |h, ctx, _| {
            h.inc(ctx);
            let _ = h.read(ctx);
        },
    );
    finish(
        "counter",
        tier,
        threads,
        ops,
        elapsed,
        hist,
        mem.read_retries(),
    )
}

/// One cell: direct max-register (a Section 6 scan per operation over
/// `MaxI64` registers — word-packable, so all three tiers apply).
fn maxreg_cell(tier: &'static str, threads: usize, quick: bool) -> E13Row {
    let ops = ops_per_thread("maxreg", threads, quick);
    let r = DirectMaxRegister::new(threads);
    let mem = mem_packable(tier, threads, r.registers(), r.owners());
    let (elapsed, hist) = run_cell(
        &mem,
        threads,
        ops,
        |_| r.handle(),
        |h, ctx, k| {
            h.write_max(ctx, k as i64);
            let _ = h.read(ctx);
        },
    );
    finish(
        "maxreg",
        tier,
        threads,
        ops,
        elapsed,
        hist,
        mem.read_retries(),
    )
}

/// One cell: Afek et al. bounded snapshot (wide `AfekReg` registers —
/// buffered and rwlock tiers only).
fn afek_cell(tier: &'static str, threads: usize, quick: bool) -> E13Row {
    let ops = ops_per_thread("afek", threads, quick);
    let snap = AfekSnapshot::new(threads);
    let mem = mem_wide(tier, threads, snap.registers::<u64>(), snap.owners());
    let (elapsed, hist) = run_cell(
        &mem,
        threads,
        ops,
        |_| (),
        |(), ctx, k| {
            snap.update(ctx, k);
            let _ = snap.snap::<u64, _>(ctx);
        },
    );
    finish(
        "afek",
        tier,
        threads,
        ops,
        elapsed,
        hist,
        mem.read_retries(),
    )
}

/// One cell: LWW map through the Figure 4 universal construction (wide
/// operation-graph registers — buffered and rwlock tiers only).
fn lwwmap_cell(tier: &'static str, threads: usize, quick: bool) -> E13Row {
    let ops = ops_per_thread("lwwmap", threads, quick);
    let uni = apram_core::Universal::new(threads, LwwMapSpec);
    let mem = mem_wide(tier, threads, uni.registers(), uni.owners());
    let (elapsed, hist) = run_cell(
        &mem,
        threads,
        ops,
        |_| uni.handle(),
        |h, ctx, k| {
            let key = (k % 8) as u32;
            let _ = h.execute(ctx, MapOp::Put(key, k));
            let _ = h.execute(ctx, MapOp::Get(key));
        },
    );
    finish(
        "lwwmap",
        tier,
        threads,
        ops,
        elapsed,
        hist,
        mem.read_retries(),
    )
}

/// Tiers applicable to an object: word-packable objects take all three,
/// wide-register objects skip `packed`.
pub fn e13_tiers_for(object: &str) -> &'static [&'static str] {
    match object {
        "counter" | "maxreg" => &E13_TIERS,
        _ => &["buffered", "rwlock"],
    }
}

/// Run the full E13 grid. Wall-clock-dependent by nature (the one
/// experiment in the suite that is): rerunning reproduces the schema
/// and the gate relations, not the exact numbers.
pub fn e13_rows(opts: &ExpOpts) -> Vec<E13Row> {
    let mut rows = Vec::new();
    for &threads in e13_threads(opts.quick) {
        for object in E13_OBJECTS {
            for &tier in e13_tiers_for(object) {
                let row = match object {
                    "counter" => counter_cell(tier, threads, opts.quick),
                    "maxreg" => maxreg_cell(tier, threads, opts.quick),
                    "afek" => afek_cell(tier, threads, opts.quick),
                    "lwwmap" => lwwmap_cell(tier, threads, opts.quick),
                    _ => unreachable!(),
                };
                rows.push(row);
            }
        }
    }
    rows
}

/// The host's available parallelism (recorded so the CI scaling gate
/// can stand down on single-core runners).
pub fn host_parallelism() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

fn find_ops(rows: &[E13Row], object: &str, tier: &str, threads: usize) -> Option<f64> {
    rows.iter()
        .find(|r| r.object == object && r.tier == tier && r.threads == threads)
        .map(|r| r.ops_per_sec)
}

/// The gate section of `BENCH_e13.json`: the two accept ratios, plus
/// the host parallelism they are conditioned on.
///
/// * `packed_over_rwlock_8t` — packed-counter / rwlock-counter
///   throughput at 8 threads (acceptance: ≥ 2 on real hardware; CI
///   enforces > 1 to absorb runner noise);
/// * `packed_8t_over_1t` — packed-counter 8-thread / 1-thread
///   throughput (only meaningful when `available_parallelism > 1`).
pub fn e13_gates(rows: &[E13Row]) -> Json {
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => Json::Float(n / d),
        _ => Json::Null,
    };
    Json::obj([
        ("available_parallelism", Json::UInt(host_parallelism())),
        (
            "packed_over_rwlock_8t",
            ratio(
                find_ops(rows, "counter", "packed", 8),
                find_ops(rows, "counter", "rwlock", 8),
            ),
        ),
        (
            "packed_8t_over_1t",
            ratio(
                find_ops(rows, "counter", "packed", 8),
                find_ops(rows, "counter", "packed", 1),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rows() -> Vec<E13Row> {
        // The quick grid at its smallest: structural checks only (unit
        // tests must not assert relative performance).
        let mut rows = Vec::new();
        for &threads in &[1usize, 8] {
            for object in E13_OBJECTS {
                for &tier in e13_tiers_for(object) {
                    rows.push(match object {
                        "counter" => counter_cell(tier, threads, true),
                        "maxreg" => maxreg_cell(tier, threads, true),
                        "afek" => afek_cell(tier, threads, true),
                        "lwwmap" => lwwmap_cell(tier, threads, true),
                        _ => unreachable!(),
                    });
                }
            }
        }
        rows
    }

    #[test]
    fn grid_shape_and_measurements() {
        let rows = tiny_rows();
        // 2 thread counts × (2 objects × 3 tiers + 2 objects × 2 tiers).
        assert_eq!(rows.len(), 2 * (2 * 3 + 2 * 2));
        for r in &rows {
            assert_eq!(r.hist.count, r.total_ops, "{}/{}", r.object, r.tier);
            assert!(r.ops_per_sec > 0.0, "{}/{}", r.object, r.tier);
            assert!(r.elapsed_secs > 0.0);
            assert!(r.hist.p50() <= r.hist.p99());
            assert!(r.hist.p99() <= r.hist.p999());
            assert!(r.hist.p999() <= r.hist.max);
            if r.tier != "buffered" {
                assert_eq!(r.read_retries, 0, "{}/{} cannot retry", r.object, r.tier);
            }
        }
    }

    #[test]
    fn gates_report_ratios() {
        let rows = tiny_rows();
        let gates = e13_gates(&rows);
        let parsed = apram_model::json::parse(&gates.to_compact()).unwrap();
        // Both gate ratios must be real numbers (the tiny grid includes
        // the 1- and 8-thread cells they compare).
        for key in ["packed_over_rwlock_8t", "packed_8t_over_1t"] {
            let v = parsed.get(key).unwrap().as_f64().unwrap();
            assert!(v > 0.0, "{key} = {v}");
        }
        let par = parsed.get("available_parallelism").unwrap();
        assert!(par.as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn ops_scale_down_with_threads() {
        for object in E13_OBJECTS {
            assert!(
                ops_per_thread(object, 8, true) <= ops_per_thread(object, 1, true),
                "{object}"
            );
            assert!(ops_per_thread(object, 32, false) > 0, "{object}");
        }
    }
}
