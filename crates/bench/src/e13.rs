//! E13 — native register-file scaling: ops/sec and op-latency
//! percentiles across threads × objects × register tiers.
//!
//! The paper's cost model counts register accesses; E13 measures what
//! those accesses cost *on hardware* now that the native backend's
//! registers are genuinely non-blocking. The grid crosses:
//!
//! * **threads** — 1/2/4/8/16/32 real OS threads;
//! * **objects** — the striped counter (word registers, one write per
//!   inc), the direct max-register (a Section 6 scan per op), the Afek
//!   et al. bounded snapshot, and the last-writer-wins map through the
//!   Figure 4 universal construction (wide `Clone` registers);
//! * **tiers** — `packed` (one `AtomicU64` per register; word-packable
//!   objects only), `buffered` (announce/validate multi-slot cells, any
//!   `Clone` value), and `rwlock` (the pre-register-file backend, kept
//!   behind the `rwlock-baseline` feature purely as this baseline).
//!
//! Objects and their applicable tiers come from the
//! [`apram_objects::spec`] registry — one generic timed cell drives any
//! [`ObjectSpec`] through its uniform session interface, so the grid
//! has no per-object code at all.
//!
//! Each cell reports throughput (ops/sec over the joined wall-clock)
//! and per-op latency p50/p99/p999 in nanoseconds through the shared
//! [`StepHistogram`], plus the buffered tier's reader-retry count (how
//! often a publish landed inside a reader's two-instruction announce
//! window — the protocol's only non-wait-free event).
//!
//! The accompanying gates (emitted into `BENCH_e13.json` and enforced
//! in CI on the quick grid via `scripts/compare_bench.py --e13-gate`):
//! the packed counter must beat the rwlock baseline at 8 threads, and —
//! on machines with real parallelism — 8-thread packed-counter
//! throughput must exceed 1-thread throughput. The report records
//! `available_parallelism` so the scaling gate can stand down on
//! single-core runners instead of asserting the impossible.

use crate::ExpOpts;
use apram_model::telemetry::HistogramSnapshot;
use apram_model::{Json, StepHistogram};
use apram_objects::spec::{native_spec, BuildCtx, ObjectSpec, Tier, OP_READ, OP_UPDATE};
use std::sync::Barrier;
use std::time::Instant;

/// The E13 object names, in emission order (each is an
/// [`apram_objects::spec`] registry name).
pub const E13_OBJECTS: [&str; 4] = ["counter", "maxreg", "afek", "lwwmap"];

/// The E13 register tiers, in emission order.
pub const E13_TIERS: [&str; 3] = ["packed", "buffered", "rwlock"];

/// One cell of the E13 grid.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// Object name (one of [`E13_OBJECTS`]).
    pub object: &'static str,
    /// Register tier (one of [`E13_TIERS`]).
    pub tier: &'static str,
    /// Concurrent OS threads (= processes).
    pub threads: usize,
    /// Total operations across all threads (one op = update + read).
    pub total_ops: u64,
    /// Wall-clock of the measured region (barrier release to last join).
    pub elapsed_secs: f64,
    /// `total_ops / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Per-op latency distribution in nanoseconds.
    pub hist: HistogramSnapshot,
    /// Buffered-tier reader validation retries (0 on other tiers).
    pub read_retries: u64,
}

impl E13Row {
    /// JSON record for `BENCH_e13.json`. Wall-clock-derived fields
    /// (`elapsed_secs`, `ops_per_sec`, the `*_ns` percentiles) are
    /// volatile across runs; `scripts/compare_bench.py` excludes them
    /// from byte diffs and gates on their ratios instead.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("object", Json::Str(self.object.into())),
            ("tier", Json::Str(self.tier.into())),
            ("threads", Json::UInt(self.threads as u64)),
            ("total_ops", Json::UInt(self.total_ops)),
            ("elapsed_secs", Json::Float(self.elapsed_secs)),
            ("ops_per_sec", Json::Float(self.ops_per_sec)),
            ("p50_ns", Json::UInt(self.hist.p50())),
            ("p99_ns", Json::UInt(self.hist.p99())),
            ("p999_ns", Json::UInt(self.hist.p999())),
            ("max_ns", Json::UInt(self.hist.max)),
            ("mean_ns", Json::Float(self.hist.mean())),
            ("read_retries", Json::UInt(self.read_retries)),
        ])
    }
}

/// The thread grid (always includes 1 and 8, which the gates compare).
pub fn e13_threads(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 2, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    }
}

/// Per-thread operations for one cell, scaled so a cell's total work is
/// roughly constant across thread counts (an op's cost also grows with
/// `n` for the scan-based objects, hence the per-object base budgets in
/// the registry).
pub fn spec_ops_per_thread(spec: &dyn ObjectSpec, threads: usize, quick: bool) -> u64 {
    let (base, floor) = spec.ops_budget(quick);
    (base / threads as u64).max(floor)
}

/// Run one timed cell of any registered object: `threads` sessions, one
/// per thread, each performing `ops` iterations of update + read, each
/// iteration's latency recorded in nanoseconds. Session setup is
/// excluded from the measurement by the barrier.
pub fn spec_cell(object: &'static str, tier: Tier, threads: usize, quick: bool) -> E13Row {
    let spec = native_spec(object).unwrap_or_else(|| panic!("unknown object '{object}'"));
    let ops = spec_ops_per_thread(spec, threads, quick);
    let inst = spec.build(&BuildCtx::new(threads, tier));
    let hist = StepHistogram::new();
    let barrier = Barrier::new(threads + 1);
    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let mut sess = inst.session(t);
            let (barrier, hist) = (&barrier, &hist);
            s.spawn(move || {
                barrier.wait();
                for k in 0..ops {
                    let t0 = Instant::now();
                    sess.op(OP_UPDATE, k, k);
                    sess.op(OP_READ, k, 0);
                    hist.record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
        // Start the clock *before* releasing the barrier: if main
        // started it after, a worker scheduled ahead of main's wake-up
        // (guaranteed on a single-core host) could finish its whole
        // loop before the clock ever started, under-measuring the cell
        // by orders of magnitude.
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total_ops = ops * threads as u64;
    E13Row {
        object,
        tier: tier.label(),
        threads,
        total_ops,
        elapsed_secs: elapsed,
        ops_per_sec: total_ops as f64 / elapsed.max(1e-9),
        hist: hist.snapshot(),
        read_retries: inst.read_retries(),
    }
}

/// Tiers applicable to an object, from its registry spec: word-packable
/// objects take all three, wide-register objects skip `packed`.
pub fn e13_tiers_for(object: &str) -> &'static [Tier] {
    native_spec(object)
        .unwrap_or_else(|| panic!("unknown object '{object}'"))
        .tiers()
}

/// Run the full E13 grid. Wall-clock-dependent by nature (the one
/// experiment in the suite that is): rerunning reproduces the schema
/// and the gate relations, not the exact numbers.
pub fn e13_rows(opts: &ExpOpts) -> Vec<E13Row> {
    let mut rows = Vec::new();
    for &threads in e13_threads(opts.quick) {
        for object in E13_OBJECTS {
            for &tier in e13_tiers_for(object) {
                rows.push(spec_cell(object, tier, threads, opts.quick));
            }
        }
    }
    rows
}

/// The host's available parallelism (recorded so the CI scaling gate
/// can stand down on single-core runners).
pub fn host_parallelism() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

fn find_ops(rows: &[E13Row], object: &str, tier: &str, threads: usize) -> Option<f64> {
    rows.iter()
        .find(|r| r.object == object && r.tier == tier && r.threads == threads)
        .map(|r| r.ops_per_sec)
}

/// The gate section of `BENCH_e13.json`: the two accept ratios, plus
/// the host parallelism they are conditioned on.
///
/// * `packed_over_rwlock_8t` — packed-counter / rwlock-counter
///   throughput at 8 threads (acceptance: ≥ 2 on real hardware; CI
///   enforces > 1 to absorb runner noise);
/// * `packed_8t_over_1t` — packed-counter 8-thread / 1-thread
///   throughput (only meaningful when `available_parallelism > 1`).
pub fn e13_gates(rows: &[E13Row]) -> Json {
    let ratio = |num: Option<f64>, den: Option<f64>| match (num, den) {
        (Some(n), Some(d)) if d > 0.0 => Json::Float(n / d),
        _ => Json::Null,
    };
    Json::obj([
        ("available_parallelism", Json::UInt(host_parallelism())),
        (
            "packed_over_rwlock_8t",
            ratio(
                find_ops(rows, "counter", "packed", 8),
                find_ops(rows, "counter", "rwlock", 8),
            ),
        ),
        (
            "packed_8t_over_1t",
            ratio(
                find_ops(rows, "counter", "packed", 8),
                find_ops(rows, "counter", "packed", 1),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_rows() -> Vec<E13Row> {
        // The quick grid at its smallest: structural checks only (unit
        // tests must not assert relative performance).
        let mut rows = Vec::new();
        for &threads in &[1usize, 8] {
            for object in E13_OBJECTS {
                for &tier in e13_tiers_for(object) {
                    rows.push(spec_cell(object, tier, threads, true));
                }
            }
        }
        rows
    }

    #[test]
    fn grid_shape_and_measurements() {
        let rows = tiny_rows();
        // 2 thread counts × (2 objects × 3 tiers + 2 objects × 2 tiers).
        assert_eq!(rows.len(), 2 * (2 * 3 + 2 * 2));
        for r in &rows {
            assert_eq!(r.hist.count, r.total_ops, "{}/{}", r.object, r.tier);
            assert!(r.ops_per_sec > 0.0, "{}/{}", r.object, r.tier);
            assert!(r.elapsed_secs > 0.0);
            assert!(r.hist.p50() <= r.hist.p99());
            assert!(r.hist.p99() <= r.hist.p999());
            assert!(r.hist.p999() <= r.hist.max);
            if r.tier != "buffered" {
                assert_eq!(r.read_retries, 0, "{}/{} cannot retry", r.object, r.tier);
            }
        }
    }

    #[test]
    fn gates_report_ratios() {
        let rows = tiny_rows();
        let gates = e13_gates(&rows);
        let parsed = apram_model::json::parse(&gates.to_compact()).unwrap();
        // Both gate ratios must be real numbers (the tiny grid includes
        // the 1- and 8-thread cells they compare).
        for key in ["packed_over_rwlock_8t", "packed_8t_over_1t"] {
            let v = parsed.get(key).unwrap().as_f64().unwrap();
            assert!(v > 0.0, "{key} = {v}");
        }
        let par = parsed.get("available_parallelism").unwrap();
        assert!(par.as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn ops_scale_down_with_threads() {
        for object in E13_OBJECTS {
            let spec = native_spec(object).unwrap();
            assert!(
                spec_ops_per_thread(spec, 8, true) <= spec_ops_per_thread(spec, 1, true),
                "{object}"
            );
            assert!(spec_ops_per_thread(spec, 32, false) > 0, "{object}");
        }
    }
}
