//! E12 — contention profiling: hot-cell heatmaps and contention-charged
//! step accounting for the hot objects.
//!
//! The paper's step bounds are worst-case over all schedules, and E10/E11
//! confirm the measured worst cases meet them. E12 asks the complementary
//! Bender-et-al. question: *how much of that worst case is contention?*
//! Each cell of the grid runs `k` writers over one object under two
//! workloads:
//!
//! - **hot** — all `k` processes share one object instance, scheduled by
//!   the burst adversary, so every collect traverses cells other
//!   processes are pending on (the one-cell pile-up).
//! - **spread** — the same `k` processes and the same per-process
//!   operations, but each process owns a private copy of the object
//!   (disjoint register slabs via an offsetting [`MemCtx`] adapter), so
//!   point contention is identically 1.
//!
//! Both workloads execute the same code path, so the raw step counts are
//! comparable while the *charged* accounting (each access charged `1/k`
//! for observed point contention `k`) separates: under `spread` charged
//! equals raw **exactly** (a deterministic identity the tests assert),
//! while under `hot` the charged total collapses below the raw one. The
//! emitted `BENCH_e12.json` compares measured steps vs the
//! contention-sensitive bound (paper bound normalized by observed mean
//! contention) vs the paper's worst-case bound, and the per-cell
//! [`ContentionMap`] heatmaps export as validated Prometheus text.

use apram_lattice::Tagged;
use apram_model::sim::strategy::BurstAdversary;
use apram_model::sim::{ProcBody, SimBuilder, SimCtx};
use apram_model::{validate_prometheus, ContentionMap, Json, MemCtx, ProcId, TelemetryRegistry};
use apram_objects::counter::{CounterLattice, DirectCounter};
use apram_objects::mwreg::{MwRegister, Stamped};
use apram_snapshot::afek::{AfekReg, AfekSnapshot};
use apram_snapshot::collect::{CollectArray, DoubleCollect};

use crate::ExpOpts;

/// The E12 object names. Deliberately free of characters that need
/// Prometheus label escaping, so the exported heatmaps stay friendly to
/// line-oriented tooling (the CI smoke grep included).
pub const E12_OBJECTS: [&str; 4] = ["counter", "afek", "double_collect", "mwreg"];

/// A [`MemCtx`] adapter that shifts every register index by a fixed
/// base: process `p` of the `spread` workload runs the unmodified object
/// code against its own register slab `[base, base + m)`.
struct OffsetCtx<'a, C> {
    inner: &'a mut C,
    base: usize,
}

impl<T: Clone, C: MemCtx<T>> MemCtx<T> for OffsetCtx<'_, C> {
    fn proc(&self) -> ProcId {
        self.inner.proc()
    }

    fn n_procs(&self) -> usize {
        self.inner.n_procs()
    }

    fn n_regs(&self) -> usize {
        self.inner.n_regs()
    }

    fn read(&mut self, reg: usize) -> T {
        self.inner.read(self.base + reg)
    }

    fn write(&mut self, reg: usize, val: T) {
        self.inner.write(self.base + reg, val)
    }

    fn point_contention(&self, reg: usize) -> u64 {
        self.inner.point_contention(self.base + reg)
    }
}

/// One cell of the E12 grid.
#[derive(Clone, Debug)]
pub struct E12Row {
    /// Object name (one of [`E12_OBJECTS`]).
    pub object: &'static str,
    /// `"hot"` (shared instance, burst adversary) or `"spread"`
    /// (private instances, disjoint cells).
    pub workload: &'static str,
    /// Concurrent writers (= processes).
    pub k: usize,
    /// The paper's worst-case per-process step bound for the cell's
    /// operation pair.
    pub paper_bound: u64,
    /// Worst raw per-process steps observed.
    pub measured_steps: u64,
    /// Worst contention-charged per-process steps observed (each access
    /// charged `1/contention`).
    pub charged_steps: f64,
    /// Mean point contention over all accesses of the run.
    pub mean_contention: f64,
    /// Peak point contention any single access observed.
    pub peak_contention: u64,
    /// Total stalled re-reads attributed to intervening writers.
    pub stall_edges: u64,
    /// The full per-cell heatmap of the run.
    pub map: ContentionMap,
}

impl E12Row {
    /// The contention-sensitive bound: the paper bound normalized by the
    /// observed mean point contention — what the worst case collapses to
    /// once steps are charged against the contention they suffered.
    pub fn contention_bound(&self) -> f64 {
        self.paper_bound as f64 / self.mean_contention.max(1.0)
    }

    /// Total charged / total raw steps — 1.0 when uncontended, strictly
    /// below 1.0 whenever any access observed contention. Computed over
    /// totals (not the worst process) because the process with the worst
    /// raw count need not be the contended one.
    pub fn collapse_ratio(&self) -> f64 {
        let raw = self.map.total_steps();
        if raw == 0 {
            1.0
        } else {
            self.map.total_charged_steps() / raw as f64
        }
    }

    /// The cell's acceptance verdict: raw steps within the paper's
    /// worst-case bound, charged steps within it too (they can only
    /// collapse), the `spread` workload perfectly uncontended (charged
    /// equals raw exactly), and the `hot` workload visibly contended.
    pub fn ok(&self) -> bool {
        let charged_within = self.charged_steps <= self.paper_bound as f64 + 1e-9;
        let within = self.measured_steps <= self.paper_bound && charged_within;
        match self.workload {
            "spread" => within && self.peak_contention <= 1 && self.stall_edges == 0,
            _ => within && self.peak_contention >= 2,
        }
    }

    /// JSON record for `BENCH_e12.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("object", Json::Str(self.object.into())),
            ("workload", Json::Str(self.workload.into())),
            ("k", Json::UInt(self.k as u64)),
            ("measured_steps", Json::UInt(self.measured_steps)),
            ("charged_steps", Json::Float(self.charged_steps)),
            ("contention_bound", Json::Float(self.contention_bound())),
            ("paper_bound", Json::UInt(self.paper_bound)),
            ("mean_contention", Json::Float(self.mean_contention)),
            ("peak_contention", Json::UInt(self.peak_contention)),
            ("stall_edges", Json::UInt(self.stall_edges)),
            ("collapse_ratio", Json::Float(self.collapse_ratio())),
            ("ok", Json::Bool(self.ok())),
            ("heatmap", self.map.to_json()),
        ])
    }
}

/// Per-process worst-case step bound for one operation pair of `object`
/// at `k` processes (the same analytic costs E10 certifies against):
/// counter `inc`+`read` are two optimized scans, Afek `update`+`snap`
/// are bounded by `2k(k+2)+2`, one double-collect `update`+`snap` by
/// `k(k+2)+1`, and an MW-register `write`+`read` are a collect plus a
/// write each.
pub fn e12_bound(object: &str, k: usize) -> u64 {
    match object {
        "counter" => (2 * (k * k + k)) as u64,
        "afek" => (2 * k * (k + 2) + 2) as u64,
        "double_collect" => (k * (k + 2) + 1) as u64,
        "mwreg" => (2 * (k + 1)) as u64,
        other => panic!("unknown E12 object '{other}'"),
    }
}

/// Run one profiled execution and return its contention map. `hot`
/// selects the burst adversary (process 1 blasts through whole
/// operations between single steps of everyone else); otherwise the
/// default round-robin runs — for the `spread` workload the schedule is
/// irrelevant, disjoint slabs cannot contend under any interleaving.
fn profile_run<T: Clone + Send + Sync + 'static>(
    registers: Vec<T>,
    owners: Vec<ProcId>,
    bodies: Vec<ProcBody<'static, T, ()>>,
    hot: bool,
    burst: u64,
) -> ContentionMap {
    let sim = SimBuilder::new(registers)
        .owners(owners)
        .max_steps(10_000_000)
        .profile(true);
    let out = if hot {
        let mut sim = sim.strategy(BurstAdversary::new(1, burst));
        sim.run(bodies)
    } else {
        let mut sim = sim;
        sim.run(bodies)
    };
    out.assert_no_panics();
    assert!(
        out.results.iter().all(Option::is_some),
        "E12 workload must terminate within the step cap"
    );
    out.contention.expect("profiling was enabled")
}

/// Build the row for one `(object, workload, k)` cell from its map.
fn finish_row(
    object: &'static str,
    workload: &'static str,
    k: usize,
    map: ContentionMap,
) -> E12Row {
    let accesses: u64 = map.cells.iter().map(|c| c.accesses()).sum();
    let contention_sum: u64 = map.cells.iter().map(|c| c.contention_sum).sum();
    let mean = if accesses == 0 {
        0.0
    } else {
        contention_sum as f64 / accesses as f64
    };
    E12Row {
        object,
        workload,
        k,
        paper_bound: e12_bound(object, k),
        measured_steps: map.proc_steps.iter().copied().max().unwrap_or(0),
        charged_steps: map.worst_charged_steps(),
        mean_contention: mean,
        peak_contention: map
            .cells
            .iter()
            .map(|c| c.peak_contention)
            .max()
            .unwrap_or(0),
        stall_edges: map.stall_edges.values().sum(),
        map,
    }
}

/// `k` disjoint copies of one instance's registers, each slab owned
/// wholesale by its process.
fn spread_layout<T: Clone>(instance: &[T], k: usize) -> (Vec<T>, Vec<ProcId>) {
    let m = instance.len();
    let registers: Vec<T> = (0..k).flat_map(|_| instance.iter().cloned()).collect();
    let owners: Vec<ProcId> = (0..k).flat_map(|p| std::iter::repeat_n(p, m)).collect();
    (registers, owners)
}

/// The `(hot, spread)` maps for the striped (direct lattice) counter:
/// every process performs `inc(1)` then `read()` — two optimized scans.
fn e12_counter(k: usize) -> (ContentionMap, ContentionMap) {
    let body = |c: DirectCounter, base_of: fn(usize, usize) -> usize, m: usize| {
        (0..k)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<CounterLattice>| {
                    let mut ctx = OffsetCtx {
                        inner: ctx,
                        base: base_of(p, m),
                    };
                    let mut h = c.handle();
                    h.inc(&mut ctx, p as u64 + 1);
                    let _ = h.read(&mut ctx);
                }) as ProcBody<'static, CounterLattice, ()>
            })
            .collect::<Vec<_>>()
    };
    let c = DirectCounter::new(k);
    let m = c.registers().len();
    let hot = profile_run(
        c.registers(),
        c.owners(),
        body(c, |_, _| 0, m),
        true,
        (k * k + k) as u64,
    );
    let (registers, owners) = spread_layout(&c.registers(), k);
    let spread = profile_run(registers, owners, body(c, |p, m| p * m, m), false, 0);
    (hot, spread)
}

/// The `(hot, spread)` maps for the Afek et al. bounded snapshot:
/// every process performs one `update` then one `snap`.
fn e12_afek(k: usize) -> (ContentionMap, ContentionMap) {
    let body = |snap: AfekSnapshot, base_of: fn(usize, usize) -> usize, m: usize| {
        (0..k)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<AfekReg<u32>>| {
                    let mut ctx = OffsetCtx {
                        inner: ctx,
                        base: base_of(p, m),
                    };
                    snap.update(&mut ctx, p as u32 + 1);
                    let _ = snap.snap::<u32, _>(&mut ctx);
                }) as ProcBody<'static, AfekReg<u32>, ()>
            })
            .collect::<Vec<_>>()
    };
    let snap = AfekSnapshot::new(k);
    let m = snap.registers::<u32>().len();
    let hot = profile_run(
        snap.registers::<u32>(),
        snap.owners(),
        body(snap, |_, _| 0, m),
        true,
        (k * (k + 2) + 2) as u64,
    );
    let (registers, owners) = spread_layout(&snap.registers::<u32>(), k);
    let spread = profile_run(registers, owners, body(snap, |p, m| p * m, m), false, 0);
    (hot, spread)
}

/// The `(hot, spread)` maps for the double-collect snapshot: one
/// `update` then one `snap` per process (wait-free at one update each).
fn e12_double_collect(k: usize) -> (ContentionMap, ContentionMap) {
    let body = |arr: CollectArray, base_of: fn(usize, usize) -> usize, m: usize| {
        (0..k)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<Tagged<u32>>| {
                    let mut ctx = OffsetCtx {
                        inner: ctx,
                        base: base_of(p, m),
                    };
                    let mut h = DoubleCollect::new(arr);
                    h.update(&mut ctx, p as u32 + 1);
                    let _ = h.snap(&mut ctx);
                }) as ProcBody<'static, Tagged<u32>, ()>
            })
            .collect::<Vec<_>>()
    };
    let arr = CollectArray::new(k);
    let m = arr.registers::<u32>().len();
    let hot = profile_run(
        arr.registers::<u32>(),
        arr.owners(),
        body(arr, |_, _| 0, m),
        true,
        (k + 2) as u64,
    );
    let (registers, owners) = spread_layout(&arr.registers::<u32>(), k);
    let spread = profile_run(registers, owners, body(arr, |p, m| p * m, m), false, 0);
    (hot, spread)
}

/// The `(hot, spread)` maps for the multi-writer register — the closest
/// thing this model has to a literal one-cell pile-up: every `write`
/// and `read` collects the whole stamped column.
fn e12_mwreg(k: usize) -> (ContentionMap, ContentionMap) {
    let body = |reg: MwRegister, base_of: fn(usize, usize) -> usize, m: usize| {
        (0..k)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<Stamped<u64>>| {
                    let mut ctx = OffsetCtx {
                        inner: ctx,
                        base: base_of(p, m),
                    };
                    reg.write(&mut ctx, p as u64 + 1);
                    let _ = reg.read(&mut ctx);
                }) as ProcBody<'static, Stamped<u64>, ()>
            })
            .collect::<Vec<_>>()
    };
    let reg = MwRegister::new(k);
    let m = reg.registers::<u64>().len();
    let hot = profile_run(
        reg.registers::<u64>(),
        reg.owners(),
        body(reg, |_, _| 0, m),
        true,
        (k + 1) as u64,
    );
    let (registers, owners) = spread_layout(&reg.registers::<u64>(), k);
    let spread = profile_run(registers, owners, body(reg, |p, m| p * m, m), false, 0);
    (hot, spread)
}

/// Run the E12 grid: for every object and every writer count `k`, the
/// hot (shared instance, burst adversary) and spread (private slabs)
/// workloads, profiled. Fully deterministic — both schedules are
/// deterministic and the profiler has no clock.
pub fn e12_rows(opts: &ExpOpts) -> Vec<E12Row> {
    let ks: &[usize] = if opts.quick { &[2, 3] } else { &[2, 3, 4] };
    let mut rows = Vec::new();
    for &k in ks {
        for object in E12_OBJECTS {
            let (hot, spread) = match object {
                "counter" => e12_counter(k),
                "afek" => e12_afek(k),
                "double_collect" => e12_double_collect(k),
                "mwreg" => e12_mwreg(k),
                _ => unreachable!(),
            };
            rows.push(finish_row(object, "hot", k, hot));
            rows.push(finish_row(object, "spread", k, spread));
        }
    }
    rows
}

/// All E12 heatmaps as one Prometheus exposition document, every series
/// labeled `object="<object>_<workload>_k<k>"`, exported through a
/// [`TelemetryRegistry`] so the text dedupes `# TYPE` headers. Panics if
/// the result fails [`validate_prometheus`] — the acceptance criterion.
pub fn e12_heatmap_prometheus(rows: &[E12Row]) -> String {
    let reg = TelemetryRegistry::new(1);
    for row in rows {
        let label = format!("{}_{}_k{}", row.object, row.workload, row.k);
        row.map.register_heatmap(&reg, 0, &label);
    }
    let text = reg.to_prometheus();
    validate_prometheus(&text).expect("E12 heatmap must pass validate_prometheus");
    text
}

/// All E12 heatmaps as one JSON document keyed `<object>/<workload>/k`.
pub fn e12_heatmap_json(rows: &[E12Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| {
                Json::obj([
                    ("object", Json::Str(row.object.into())),
                    ("workload", Json::Str(row.workload.into())),
                    ("k", Json::UInt(row.k as u64)),
                    ("heatmap", row.map.to_json()),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use apram_model::CHARGE_UNIT;

    fn quick_rows() -> Vec<E12Row> {
        e12_rows(&ExpOpts {
            seed: 0,
            quick: true,
            threads: 0,
        })
    }

    #[test]
    fn e12_grid_shape_and_verdicts() {
        let rows = quick_rows();
        // 4 objects × 2 workloads × k ∈ {2, 3}.
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(row.ok(), "cell failed: {row:?}");
            assert!(row.measured_steps > 0, "{row:?}");
            assert!(row.map.runs == 1, "{row:?}");
        }
    }

    #[test]
    fn spread_is_perfectly_uncontended() {
        for row in quick_rows().iter().filter(|r| r.workload == "spread") {
            // Disjoint slabs: every access is charged a full step, so
            // the fixed-point identity holds exactly per process.
            for p in 0..row.k {
                assert_eq!(
                    row.map.charged_total[p],
                    row.map.proc_steps[p] * CHARGE_UNIT,
                    "{}/{} proc {p}",
                    row.object,
                    row.k
                );
            }
            assert_eq!(row.mean_contention, 1.0, "{row:?}");
            assert!(row.stall_edges == 0, "{row:?}");
            // The CI gate: charged steps within the paper bound.
            assert!(row.charged_steps <= row.paper_bound as f64, "{row:?}");
        }
    }

    #[test]
    fn hot_collapses_below_raw_steps() {
        for row in quick_rows().iter().filter(|r| r.workload == "hot") {
            assert!(
                row.peak_contention >= 2,
                "adversary forced no contention: {row:?}"
            );
            assert!(
                row.collapse_ratio() < 1.0,
                "charged accounting did not collapse: {row:?}"
            );
            assert!(row.contention_bound() < row.paper_bound as f64, "{row:?}");
        }
    }

    #[test]
    fn hot_outweighs_spread_on_contention() {
        let rows = quick_rows();
        for hot in rows.iter().filter(|r| r.workload == "hot") {
            let spread = rows
                .iter()
                .find(|r| r.object == hot.object && r.k == hot.k && r.workload == "spread")
                .unwrap();
            assert!(
                hot.mean_contention > spread.mean_contention,
                "{}",
                hot.object
            );
            // Same code path: the quiet (spread) run can never take more
            // raw steps than the adversarial one.
            assert!(
                spread.measured_steps <= hot.measured_steps,
                "{}",
                hot.object
            );
        }
    }

    #[test]
    fn heatmap_artifacts_validate() {
        let rows = quick_rows();
        let prom = e12_heatmap_prometheus(&rows);
        assert!(prom.contains("apram_cell_accesses{object=\"counter_hot_k2\""));
        for row in &rows {
            let text = row.map.to_prometheus(row.object);
            validate_prometheus(&text).expect("per-row heatmap must validate");
        }
        let doc = e12_heatmap_json(&rows);
        let parsed = apram_model::json::parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed.as_arr().unwrap().len(), rows.len());
    }

    #[test]
    fn e12_is_deterministic() {
        let a = quick_rows();
        let b = quick_rows();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.map, y.map, "{}/{}/{}", x.object, x.workload, x.k);
        }
    }
}
