//! The config-driven sweep harness: a [`SweepPlan`] (a hand-rolled-JSON
//! grid over object × n × f × scheduler × schedule-budget) driving a
//! resumable run directory.
//!
//! A sweep materializes as `runs/<name>/`:
//!
//! * `plan.json` — the plan itself, written at sweep start and verified
//!   on resume (resuming under a different plan is an error, not a
//!   silent mix of grids).
//! * `cell_<id>.json` — one report per grid cell, written atomically
//!   (temp file + rename) after the cell completes. Cell reports are
//!   **deterministic bytes** for a given plan: rerunning or resuming a
//!   cell reproduces its file exactly.
//! * `manifest.json` — sweep progress (completed cell ids, in grid
//!   execution order), rewritten after every cell.
//! * `heartbeat.jsonl` — one [`ProgressBeat`] line per completed cell
//!   (appended across resumes), via the telemetry plumbing.
//!
//! Resume is cell-file-based: [`run_sweep`] skips any cell whose report
//! already parses, so an interrupted sweep restarts from the last
//! completed cell — and because each cell's seed is derived from the
//! root seed and the cell *id* (not its position or the completion
//! history), the resumed cells are bit-identical to what an
//! uninterrupted sweep would have produced.
//!
//! # Seed scheme
//!
//! One root seed reproduces the whole sweep (see [`apram_model::seed`]):
//! cell execution order is shuffled with `split(seed, STREAM_ORDER)`,
//! and each cell samples with `split(seed, STREAM_CELL ^ fnv1a(id))`.
//!
//! # Plan schema
//!
//! ```json
//! {
//!   "name": "quick",
//!   "seed": 0,
//!   "objects": ["snapshot", "afek", "double-collect", "scan", "lock"],
//!   "ns": [2, 3],
//!   "fs": [0, 1],
//!   "schedulers": ["random", "pct3", "exhaustive"],
//!   "budget": {"runs": 2000, "depth": 0}
//! }
//! ```
//!
//! `objects` name the snapshot constructions of the E10/E11 grids
//! (`lock` is the negative control and only instantiates at `n = 2`);
//! `schedulers` are `exhaustive` (the certifier), `random` (uniform
//! schedule sampling) or `pct<d>` (PCT at depth `d`); `budget.runs` is
//! the schedule budget per sampled cell and `budget.depth` the
//! exhaustive branching depth (0 = the E10 per-cell default).

use apram_model::seed::{fnv1a, split, STREAM_CELL, STREAM_ORDER};
use apram_model::sim::{
    Budgeted, CertifyConfig, ExploreConfig, SampleConfig, SampleReport, Sampler,
};
use apram_model::telemetry::{Heartbeat, ProgressBeat};
use apram_model::Json;
use apram_objects::simspec::{sim_spec, SimObjectSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The objects a sweep can instantiate, in canonical grid order.
pub const SWEEP_OBJECTS: [&str; 5] = apram_objects::simspec::SIM_OBJECTS;

/// How one cell explores its schedule space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellSched {
    /// Exhaustive fault-aware certification (the E10 engine).
    Exhaustive,
    /// Uniform random schedule sampling.
    Random,
    /// PCT priority sampling at the given depth.
    Pct(u32),
}

impl CellSched {
    /// Parse a scheduler name: `exhaustive`, `random`, or `pct<d>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "exhaustive" => Ok(CellSched::Exhaustive),
            "random" => Ok(CellSched::Random),
            _ => s
                .strip_prefix("pct")
                .and_then(|d| d.parse::<u32>().ok())
                .filter(|&d| d >= 1)
                .map(CellSched::Pct)
                .ok_or_else(|| format!("unknown scheduler '{s}' (want exhaustive|random|pct<d>)")),
        }
    }

    /// The canonical spelling [`parse`](Self::parse) accepts.
    pub fn label(&self) -> String {
        match self {
            CellSched::Exhaustive => "exhaustive".into(),
            CellSched::Random => "random".into(),
            CellSched::Pct(d) => format!("pct{d}"),
        }
    }

    fn sampler(&self) -> Option<Sampler> {
        match *self {
            CellSched::Exhaustive => None,
            CellSched::Random => Some(Sampler::Random),
            CellSched::Pct(depth) => Some(Sampler::Pct { depth }),
        }
    }
}

/// One grid cell: an object instance, fault budget, and scheduler with
/// its schedule budget.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Object name (one of [`SWEEP_OBJECTS`]).
    pub object: String,
    /// Number of processes.
    pub n: usize,
    /// Crash budget (exhaustive: all patterns up to `f`; sampled: `f`
    /// random victims per run).
    pub f: usize,
    /// The exploration engine.
    pub sched: CellSched,
    /// Schedule budget for sampled cells.
    pub runs: u64,
    /// Branching depth for exhaustive cells (0 = E10 default).
    pub depth: usize,
}

impl SweepCell {
    /// The cell's stable identity — the key for its report file and its
    /// seed stream. Independent of grid order, so reordering or
    /// extending a plan never changes an existing cell's results.
    pub fn id(&self) -> String {
        format!(
            "{}_n{}_f{}_{}",
            self.object.replace('-', ""),
            self.n,
            self.f,
            self.sched.label()
        )
    }

    /// This cell's root seed under the sweep's seed.
    pub fn seed(&self, sweep_seed: u64) -> u64 {
        split(sweep_seed, STREAM_CELL ^ fnv1a(self.id().as_bytes()))
    }
}

/// The declarative sweep grid; see the [module docs](self) for the JSON
/// schema.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    /// Sweep name (names the run directory).
    pub name: String,
    /// Root seed: the whole sweep is a pure function of this value.
    pub seed: u64,
    /// Objects to instantiate.
    pub objects: Vec<String>,
    /// Process counts.
    pub ns: Vec<usize>,
    /// Crash budgets.
    pub fs: Vec<usize>,
    /// Exploration engines.
    pub schedulers: Vec<CellSched>,
    /// Schedule budget per sampled cell.
    pub runs: u64,
    /// Branching depth for exhaustive cells (0 = E10 default).
    pub depth: usize,
}

impl SweepPlan {
    /// Parse a plan from its JSON text.
    pub fn from_json(text: &str) -> Result<SweepPlan, String> {
        let doc = apram_model::json::parse(text).map_err(|e| format!("bad plan JSON: {e:?}"))?;
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("plan is missing string field '{k}'"))
        };
        let u64_list = |k: &str| -> Result<Vec<u64>, String> {
            doc.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("plan is missing array field '{k}'"))?
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| format!("non-integer in '{k}'")))
                .collect()
        };
        let objects: Vec<String> = doc
            .get("objects")
            .and_then(Json::as_arr)
            .ok_or("plan is missing array field 'objects'")?
            .iter()
            .map(|v| {
                let name = v.as_str().ok_or("non-string in 'objects'")?;
                if SWEEP_OBJECTS.contains(&name) {
                    Ok(name.to_string())
                } else {
                    Err(format!("unknown object '{name}' (want {SWEEP_OBJECTS:?})"))
                }
            })
            .collect::<Result<_, String>>()?;
        let schedulers = doc
            .get("schedulers")
            .and_then(Json::as_arr)
            .ok_or("plan is missing array field 'schedulers'")?
            .iter()
            .map(|v| CellSched::parse(v.as_str().ok_or("non-string in 'schedulers'")?))
            .collect::<Result<Vec<_>, String>>()?;
        let budget = doc.get("budget").unwrap_or(&Json::Null);
        let plan = SweepPlan {
            name: str_field("name")?,
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            objects,
            ns: u64_list("ns")?.into_iter().map(|n| n as usize).collect(),
            fs: u64_list("fs")?.into_iter().map(|f| f as usize).collect(),
            schedulers,
            runs: budget.get("runs").and_then(Json::as_u64).unwrap_or(1000),
            depth: budget.get("depth").and_then(Json::as_u64).unwrap_or(0) as usize,
        };
        if plan.name.is_empty()
            || !plan
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "plan name '{}' must be non-empty [A-Za-z0-9_-]",
                plan.name
            ));
        }
        if plan.objects.is_empty() || plan.ns.is_empty() || plan.fs.is_empty() {
            return Err("plan grid is empty (objects/ns/fs)".into());
        }
        if plan.schedulers.is_empty() {
            return Err("plan has no schedulers".into());
        }
        Ok(plan)
    }

    /// Serialize back to the JSON schema [`from_json`](Self::from_json)
    /// parses.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::UInt(self.seed)),
            (
                "objects",
                Json::Arr(self.objects.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "ns",
                Json::Arr(self.ns.iter().map(|&n| Json::UInt(n as u64)).collect()),
            ),
            (
                "fs",
                Json::Arr(self.fs.iter().map(|&f| Json::UInt(f as u64)).collect()),
            ),
            (
                "schedulers",
                Json::Arr(
                    self.schedulers
                        .iter()
                        .map(|s| Json::Str(s.label()))
                        .collect(),
                ),
            ),
            (
                "budget",
                Json::obj([
                    ("runs", Json::UInt(self.runs)),
                    ("depth", Json::UInt(self.depth as u64)),
                ]),
            ),
        ])
    }

    /// Expand the grid into cells, in execution order: the cross
    /// product, minus meaningless combinations (the lock control only
    /// instantiates at `n = 2`), shuffled deterministically by
    /// `split(seed, STREAM_ORDER)` so long sweeps interleave cheap and
    /// expensive cells instead of draining one object at a time.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for object in &self.objects {
            for &n in &self.ns {
                if object == "lock" && n != 2 {
                    continue;
                }
                for &f in &self.fs {
                    if f >= n {
                        continue;
                    }
                    for sched in &self.schedulers {
                        cells.push(SweepCell {
                            object: object.clone(),
                            n,
                            f,
                            sched: *sched,
                            runs: self.runs,
                            depth: self.depth,
                        });
                    }
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(split(self.seed, STREAM_ORDER));
        for i in (1..cells.len()).rev() {
            cells.swap(i, rng.gen_range(0..=i));
        }
        cells
    }
}

/// Look up the sim spec for an object name, panicking with the sweep's
/// canonical error on an unknown name.
fn spec_for(object: &str) -> &'static dyn SimObjectSpec {
    sim_spec(object).unwrap_or_else(|| panic!("unknown object '{object}'"))
}

/// Analytic per-process step bound for one object instance (the same
/// bounds the E10 grid certifies against; `lock`'s is the reference
/// bound its tail is expected to blow through). Delegates to the
/// [`apram_objects::simspec`] registry.
pub fn object_bound(object: &str, n: usize) -> u64 {
    spec_for(object).bound(n)
}

/// Build the sampled configuration shared by every object dispatch arm.
fn cell_sample_config(cell: &SweepCell, seed: u64, threads: usize) -> SampleConfig {
    let sampler = cell.sched.sampler().expect("sampled cell");
    let spec = spec_for(&cell.object);
    SampleConfig::new(vec![spec.bound(cell.n); cell.n])
        .sampler(sampler)
        .seed(seed)
        .threads(threads)
        .tail_only(spec.tail_only())
        .require_finish(!spec.tail_only())
        .max_runs(cell.runs)
        .max_crashes(cell.f)
}

/// Run one *sampled* cell (`random` / `pct<d>`) through the
/// [`apram_objects::simspec`] registry; `seed` is the cell seed from
/// [`SweepCell::seed`].
pub fn run_sample_cell(cell: &SweepCell, seed: u64, threads: usize) -> SampleReport {
    let scfg = cell_sample_config(cell, seed, threads);
    spec_for(&cell.object).sample(&scfg, cell.n, threads)
}

/// Run one *exhaustive* cell through the E10 certifier; bit-identical
/// across thread counts by the certifier's own guarantee.
pub fn run_exhaustive_cell(cell: &SweepCell, threads: usize) -> Json {
    let n = cell.n;
    let spec = spec_for(&cell.object);
    let depth = if cell.depth > 0 {
        cell.depth
    } else {
        spec.default_depth(n, cell.f)
    };
    let ccfg = CertifyConfig::new(vec![spec.bound(n); n])
        .explore(ExploreConfig::new().max_depth(depth).max_crashes(cell.f));
    let cert = spec.certify(&ccfg, n, threads);
    Json::obj([
        ("depth", Json::UInt(depth as u64)),
        ("certificate", cert.to_json()),
    ])
}

/// Run one cell and build its (deterministic) report document.
pub fn run_cell(cell: &SweepCell, sweep_seed: u64, threads: usize) -> Json {
    let seed = cell.seed(sweep_seed);
    let mut fields: Vec<(String, Json)> = vec![
        ("cell".into(), Json::Str(cell.id())),
        ("object".into(), Json::Str(cell.object.clone())),
        ("n".into(), Json::UInt(cell.n as u64)),
        ("f".into(), Json::UInt(cell.f as u64)),
        ("scheduler".into(), Json::Str(cell.sched.label())),
        (
            "bound".into(),
            Json::UInt(object_bound(&cell.object, cell.n)),
        ),
    ];
    let body = match cell.sched {
        CellSched::Exhaustive => run_exhaustive_cell(cell, threads),
        _ => {
            let report = run_sample_cell(cell, seed, threads);
            Json::obj([("sample", report.to_json())])
        }
    };
    let Json::Obj(pairs) = body else {
        unreachable!("cell bodies are objects")
    };
    fields.extend(pairs);
    Json::obj(fields)
}

/// Options for [`run_sweep`] / [`resume_sweep`].
#[derive(Clone, Debug, Default)]
pub struct SweepOpts {
    /// Worker threads per cell (0 = all available parallelism).
    pub threads: usize,
    /// Stop (successfully) after completing this many *new* cells —
    /// the hook the resume tests and the CI kill-resume check use to
    /// interrupt a sweep at a cell boundary.
    pub max_cells: Option<usize>,
    /// Heartbeat cadence for `heartbeat.jsonl` (a beat is also forced
    /// after every completed cell).
    pub every: Duration,
}

/// What a sweep invocation did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Cells in the plan's grid.
    pub total: usize,
    /// Cells skipped because their report already existed (resume).
    pub skipped: usize,
    /// Cells executed by this invocation.
    pub completed: usize,
}

impl SweepOutcome {
    /// Every cell in the grid now has a report.
    pub fn done(&self) -> bool {
        self.skipped + self.completed == self.total
    }
}

/// File name of one cell's report.
pub fn cell_file(dir: &Path, cell: &SweepCell) -> PathBuf {
    dir.join(format!("cell_{}.json", cell.id()))
}

/// Atomically write `contents` (temp file + rename), so an interrupted
/// sweep never leaves a half-written report to be mistaken for a
/// completed cell.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Execute `plan` into `dir`, skipping cells whose reports already
/// exist; see the [module docs](self) for the directory layout and
/// resume semantics.
pub fn run_sweep(plan: &SweepPlan, dir: &Path, opts: &SweepOpts) -> std::io::Result<SweepOutcome> {
    let started = Instant::now();
    std::fs::create_dir_all(dir)?;
    let plan_path = dir.join("plan.json");
    let plan_text = plan.to_json().to_pretty(2);
    if plan_path.exists() {
        let existing = std::fs::read_to_string(&plan_path)?;
        if existing != plan_text {
            return Err(std::io::Error::other(format!(
                "{} holds a different plan; refusing to mix sweeps (use a fresh --out)",
                plan_path.display()
            )));
        }
    } else {
        write_atomic(&plan_path, &plan_text)?;
    }
    let hb_file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("heartbeat.jsonl"))?;
    let every = if opts.every.is_zero() {
        Duration::from_millis(500)
    } else {
        opts.every
    };
    let hb = Heartbeat::new(every, hb_file);

    let cells = plan.cells();
    let mut outcome = SweepOutcome {
        total: cells.len(),
        skipped: 0,
        completed: 0,
    };
    let mut completed_ids: Vec<String> = Vec::new();
    let write_manifest = |done_ids: &[String], outcome: &SweepOutcome| {
        let doc = Json::obj([
            ("name", Json::Str(plan.name.clone())),
            ("seed", Json::UInt(plan.seed)),
            ("total_cells", Json::UInt(outcome.total as u64)),
            (
                "completed",
                Json::Arr(done_ids.iter().cloned().map(Json::Str).collect()),
            ),
            ("done", Json::Bool(done_ids.len() == outcome.total)),
        ]);
        write_atomic(&dir.join("manifest.json"), &doc.to_pretty(2))
    };

    for cell in &cells {
        let path = cell_file(dir, cell);
        let prior = std::fs::read_to_string(&path)
            .ok()
            .filter(|text| apram_model::json::parse(text).is_ok());
        if prior.is_some() {
            outcome.skipped += 1;
            completed_ids.push(cell.id());
            continue;
        }
        if opts.max_cells.is_some_and(|k| outcome.completed >= k) {
            write_manifest(&completed_ids, &outcome)?;
            return Ok(outcome);
        }
        let report = run_cell(cell, plan.seed, opts.threads);
        write_atomic(&path, &report.to_pretty(2))?;
        outcome.completed += 1;
        completed_ids.push(cell.id());
        write_manifest(&completed_ids, &outcome)?;
        hb.emit(&ProgressBeat {
            elapsed: started.elapsed(),
            runs: (outcome.skipped + outcome.completed) as u64,
            sleep_skips: 0,
            queue_depth: outcome.total - outcome.skipped - outcome.completed,
            violation_found: report
                .get("sample")
                .and_then(|s| s.get("violations"))
                .and_then(Json::as_u64)
                .is_some_and(|v| v > 0),
        });
    }
    write_manifest(&completed_ids, &outcome)?;
    Ok(outcome)
}

/// Resume the sweep recorded in `dir`: re-parse its `plan.json` and
/// re-run, skipping every completed cell.
pub fn resume_sweep(dir: &Path, opts: &SweepOpts) -> std::io::Result<SweepOutcome> {
    let plan_path = dir.join("plan.json");
    let text = std::fs::read_to_string(&plan_path)
        .map_err(|e| std::io::Error::other(format!("cannot read {}: {e}", plan_path.display())))?;
    let plan = SweepPlan::from_json(&text).map_err(std::io::Error::other)?;
    run_sweep(&plan, dir, opts)
}

/// The built-in quick sweep plan (the CI smoke grid): two schedulers
/// over the full object set at n = 2, one crash, a few hundred
/// schedules per sampled cell.
pub fn quick_plan(seed: u64) -> SweepPlan {
    SweepPlan {
        name: "quick".into(),
        seed,
        objects: SWEEP_OBJECTS.iter().map(|s| s.to_string()).collect(),
        ns: vec![2],
        fs: vec![1],
        schedulers: vec![CellSched::Random, CellSched::Pct(3)],
        runs: 300,
        depth: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan(seed: u64) -> SweepPlan {
        SweepPlan {
            name: "tiny".into(),
            seed,
            objects: vec!["scan".into(), "lock".into()],
            ns: vec![2],
            fs: vec![0, 1],
            schedulers: vec![CellSched::Random, CellSched::Exhaustive],
            runs: 40,
            depth: 5,
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = tiny_plan(9);
        let text = plan.to_json().to_pretty(2);
        let back = SweepPlan::from_json(&text).unwrap();
        assert_eq!(back.to_json().to_pretty(2), text);
        assert_eq!(back.cells().len(), plan.cells().len());
    }

    #[test]
    fn plan_rejects_garbage() {
        assert!(SweepPlan::from_json("{").is_err());
        assert!(SweepPlan::from_json("{\"name\": \"x\"}").is_err());
        let bad_obj =
            r#"{"name":"x","seed":0,"objects":["nope"],"ns":[2],"fs":[0],"schedulers":["random"]}"#;
        assert!(SweepPlan::from_json(bad_obj)
            .unwrap_err()
            .contains("unknown object"));
        let bad_sched =
            r#"{"name":"x","seed":0,"objects":["scan"],"ns":[2],"fs":[0],"schedulers":["pct0"]}"#;
        assert!(SweepPlan::from_json(bad_sched)
            .unwrap_err()
            .contains("scheduler"));
        let bad_name = r#"{"name":"a/b","seed":0,"objects":["scan"],"ns":[2],"fs":[0],"schedulers":["random"]}"#;
        assert!(SweepPlan::from_json(bad_name).unwrap_err().contains("name"));
    }

    #[test]
    fn grid_expansion_filters_and_shuffles_deterministically() {
        let plan = tiny_plan(1);
        let cells = plan.cells();
        // scan: 2 f × 2 sched; lock at n=2: same → 8 cells.
        assert_eq!(cells.len(), 8);
        assert_eq!(
            cells.iter().map(|c| c.id()).collect::<Vec<_>>(),
            plan.cells().iter().map(|c| c.id()).collect::<Vec<_>>(),
            "shuffle must be a pure function of the seed"
        );
        let mut other = tiny_plan(2)
            .cells()
            .iter()
            .map(|c| c.id())
            .collect::<Vec<_>>();
        let mut ours = cells.iter().map(|c| c.id()).collect::<Vec<_>>();
        // Same cell set, (almost surely) different order under another seed.
        ours.sort();
        other.sort();
        assert_eq!(ours, other);
        // Lock never instantiates at n != 2, f never reaches n.
        let wide = SweepPlan {
            ns: vec![2, 3],
            fs: vec![0, 1, 2],
            ..tiny_plan(0)
        };
        for c in wide.cells() {
            assert!(c.object != "lock" || c.n == 2);
            assert!(c.f < c.n);
        }
    }

    #[test]
    fn cell_seed_is_order_independent() {
        let plan = tiny_plan(7);
        let by_id: std::collections::HashMap<String, u64> = plan
            .cells()
            .iter()
            .map(|c| (c.id(), c.seed(plan.seed)))
            .collect();
        // Reversing or re-deriving the grid never changes a cell's seed.
        for c in plan.cells().iter().rev() {
            assert_eq!(by_id[&c.id()], c.seed(plan.seed));
        }
        // Distinct cells get distinct seeds.
        let mut seeds: Vec<u64> = by_id.values().copied().collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), by_id.len());
    }
}
