//! Per-operation step-count distributions (the E4 telemetry tables):
//! every snapshot implementation, the multi-writer register, and the
//! approximate-agreement protocol, measured op by op through
//! [`CountingCtx`] into the log-bucketed histograms of a
//! [`TelemetryRegistry`] (one shard per simulated process), then
//! compared against the paper's analytic bounds.
//!
//! The paper's step-complexity claims are *worst-case* bounds, so the
//! interesting statistic is the distribution tail: for the
//! schedule-independent operations (lattice scans, collects, the MW
//! register) p50 = p99 = max = the bound exactly; for the
//! contention-sensitive ones (Afek et al., double collect) max must
//! stay at or under the bound while the quantiles show how far typical
//! schedules sit below it.

use crate::experiments::ExpOpts;
use apram_agreement::hierarchy::theorem5_bound;
use apram_agreement::machine::AgreementMachine;
use apram_agreement::proto::{ScanMode, Variant};
use apram_lattice::MaxU64;
use apram_model::sim::strategy::SeededRandom;
use apram_model::sim::SimBuilder;
use apram_model::{CountingCtx, HistogramSnapshot, Json, MemCtx, TelemetryRegistry};
use apram_objects::mwreg::MwRegister;
use apram_snapshot::afek::AfekSnapshot;
use apram_snapshot::collect::{naive_collect, CollectArray, DoubleCollect};
use apram_snapshot::lock::LockSnapshot;
use apram_snapshot::{ScanHandle, ScanObject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One distribution row: an operation's measured step-count histogram
/// (merged over all processes and schedules) against its analytic bound.
#[derive(Clone, Debug)]
pub struct DistRow {
    /// Operation name, e.g. `scan_literal`.
    pub op: String,
    /// What was counted per op: `reads`, `writes`, `register_ops`, or
    /// `micros` (wall clock, for the lock-based baseline).
    pub metric: &'static str,
    /// Number of processes.
    pub n: usize,
    /// The paper's analytic per-op bound in the same unit, when one
    /// exists (`None` for wall-clock rows).
    pub bound: Option<u64>,
    /// The merged histogram.
    pub hist: HistogramSnapshot,
}

impl DistRow {
    /// Whether the observed maximum respects the bound (`None` when the
    /// row has no analytic bound).
    pub fn within_bound(&self) -> Option<bool> {
        self.bound.map(|b| self.hist.max <= b)
    }

    /// JSON export for the `distributions` section of `BENCH_e4.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("op", Json::Str(self.op.clone())),
            ("metric", Json::Str(self.metric.into())),
            ("n", Json::UInt(self.n as u64)),
            ("count", Json::UInt(self.hist.count)),
            ("p50", Json::UInt(self.hist.p50())),
            ("p90", Json::UInt(self.hist.p90())),
            ("p99", Json::UInt(self.hist.p99())),
            ("max", Json::UInt(self.hist.max)),
            ("mean", Json::Float(self.hist.mean())),
            (
                "paper_bound",
                self.bound.map(Json::UInt).unwrap_or(Json::Null),
            ),
            (
                "within_bound",
                self.within_bound().map(Json::Bool).unwrap_or(Json::Null),
            ),
        ])
    }
}

/// The result of [`step_distributions`]: the summary rows plus the
/// registry that recorded them (kept so the CLI can export the raw
/// histograms as Prometheus text).
#[derive(Debug)]
pub struct StepDistributions {
    /// The sharded registry every histogram was recorded into (shard =
    /// process id).
    pub registry: TelemetryRegistry,
    /// One row per (operation, metric, n).
    pub rows: Vec<DistRow>,
}

/// How many ops each process performs per simulated run.
const OPS_PER_PROC: usize = 3;

/// Measure per-op step-count distributions for every snapshot
/// implementation, the MW register, and the agreement protocol, over
/// seeded-random schedules. Panics if any operation exceeds its
/// analytic bound — that is the E4 acceptance criterion.
pub fn step_distributions(opts: &ExpOpts) -> StepDistributions {
    let ns: &[usize] = if opts.quick { &[2, 3] } else { &[2, 3, 4, 6] };
    let seeds: u64 = if opts.quick { 2 } else { 4 };
    let registry = TelemetryRegistry::new(*ns.iter().max().unwrap());
    let mut rows = Vec::new();

    for &n in ns {
        scan_rows(opts, &registry, &mut rows, n, seeds);
        afek_rows(opts, &registry, &mut rows, n, seeds);
        collect_rows(opts, &registry, &mut rows, n, seeds);
        mwreg_rows(opts, &registry, &mut rows, n, seeds);
        agreement_rows(opts, &registry, &mut rows, n, seeds);
        lock_rows(opts, &registry, &mut rows, n);
    }

    for r in &rows {
        if let Some(false) = r.within_bound() {
            panic!(
                "E4 bound violated: {} {} n={} observed max {} > paper bound {}",
                r.op,
                r.metric,
                r.n,
                r.hist.max,
                r.bound.unwrap()
            );
        }
    }
    StepDistributions { registry, rows }
}

/// Close a row over the named registry histogram.
fn close_row(
    registry: &TelemetryRegistry,
    key: &str,
    op: &str,
    metric: &'static str,
    n: usize,
    bound: Option<u64>,
) -> DistRow {
    DistRow {
        op: op.into(),
        metric,
        n,
        bound,
        hist: registry.histogram_snapshot(key).unwrap_or_default(),
    }
}

/// Literal and optimized lattice scans: schedule-independent costs, so
/// the whole distribution collapses onto the §6.2 formulas.
fn scan_rows(
    opts: &ExpOpts,
    registry: &TelemetryRegistry,
    rows: &mut Vec<DistRow>,
    n: usize,
    seeds: u64,
) {
    let lit_r = registry.histogram(&format!("scan_literal_reads_n{n}"));
    let lit_w = registry.histogram(&format!("scan_literal_writes_n{n}"));
    let opt_r = registry.histogram(&format!("scan_optimized_reads_n{n}"));
    let opt_w = registry.histogram(&format!("scan_optimized_writes_n{n}"));
    for seed in 0..seeds {
        let obj = ScanObject::new(n);
        let (hr, hw) = (lit_r.clone(), lit_w.clone());
        let out = SimBuilder::new(obj.registers::<MaxU64>())
            .owners(obj.owners())
            .strategy(SeededRandom::new(opts.seed ^ (0xE4 + seed)))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut c = CountingCtx::new(ctx);
                for k in 0..OPS_PER_PROC {
                    c.begin_op();
                    let _ = obj.scan(&mut c, MaxU64::new((p * 10 + k) as u64 + 1));
                    hr.record(p, c.op_reads());
                    hw.record(p, c.op_writes());
                }
            });
        out.assert_no_panics();
        let (hr, hw) = (opt_r.clone(), opt_w.clone());
        let out = SimBuilder::new(obj.registers::<MaxU64>())
            .owners(obj.owners())
            .strategy(SeededRandom::new(opts.seed ^ (0xE40 + seed)))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut h = ScanHandle::new(obj);
                let mut c = CountingCtx::new(ctx);
                for k in 0..OPS_PER_PROC {
                    c.begin_op();
                    let _ = h.scan(&mut c, MaxU64::new((p * 10 + k) as u64 + 1));
                    hr.record(p, c.op_reads());
                    hw.record(p, c.op_writes());
                }
            });
        out.assert_no_panics();
    }
    let lits = (
        ScanObject::literal_scan_reads(n),
        ScanObject::literal_scan_writes(n),
    );
    let opts_ = (
        ScanObject::optimized_scan_reads(n),
        ScanObject::optimized_scan_writes(n),
    );
    for (key, op, metric, bound) in [
        (
            format!("scan_literal_reads_n{n}"),
            "scan_literal",
            "reads",
            lits.0,
        ),
        (
            format!("scan_literal_writes_n{n}"),
            "scan_literal",
            "writes",
            lits.1,
        ),
        (
            format!("scan_optimized_reads_n{n}"),
            "scan_optimized",
            "reads",
            opts_.0,
        ),
        (
            format!("scan_optimized_writes_n{n}"),
            "scan_optimized",
            "writes",
            opts_.1,
        ),
    ] {
        rows.push(close_row(registry, &key, op, metric, n, Some(bound)));
    }
}

/// Afek et al. snapshot: one update then two snaps per process, so every
/// snap overlaps at most one update per process and the `n(n+2)` bound
/// applies (the E4b comparison axis).
fn afek_rows(
    opts: &ExpOpts,
    registry: &TelemetryRegistry,
    rows: &mut Vec<DistRow>,
    n: usize,
    seeds: u64,
) {
    let hs = registry.histogram(&format!("afek_snap_reads_n{n}"));
    let hu = registry.histogram(&format!("afek_update_reads_n{n}"));
    for seed in 0..seeds {
        let snap = AfekSnapshot::new(n);
        let (hs, hu) = (hs.clone(), hu.clone());
        let out = SimBuilder::new(snap.registers::<u64>())
            .owners(snap.owners())
            .strategy(SeededRandom::new(opts.seed ^ (0xAF + seed)))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut c = CountingCtx::new(ctx);
                c.begin_op();
                snap.update(&mut c, p as u64 + 1);
                hu.record(p, c.op_reads());
                for _ in 0..2 {
                    c.begin_op();
                    let _ = snap.snap::<u64, _>(&mut c);
                    hs.record(p, c.op_reads());
                }
            });
        out.assert_no_panics();
    }
    rows.push(close_row(
        registry,
        &format!("afek_snap_reads_n{n}"),
        "afek_snap",
        "reads",
        n,
        Some(AfekSnapshot::bounded_update_snap_reads(n)),
    ));
    rows.push(close_row(
        registry,
        &format!("afek_update_reads_n{n}"),
        "afek_update",
        "reads",
        n,
        Some(AfekSnapshot::bounded_update_update_reads(n)),
    ));
}

/// Double collect and the naive single collect. Each process performs
/// one update before snapping, so at most `n` tag changes occur and the
/// double collect terminates within `n+2` collects.
fn collect_rows(
    opts: &ExpOpts,
    registry: &TelemetryRegistry,
    rows: &mut Vec<DistRow>,
    n: usize,
    seeds: u64,
) {
    let hd = registry.histogram(&format!("double_collect_snap_reads_n{n}"));
    let hn = registry.histogram(&format!("naive_collect_reads_n{n}"));
    for seed in 0..seeds {
        let arr = CollectArray::new(n);
        let (hd, hn) = (hd.clone(), hn.clone());
        let out = SimBuilder::new(arr.registers::<u64>())
            .owners(arr.owners())
            .strategy(SeededRandom::new(opts.seed ^ (0xDC + seed)))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut h = DoubleCollect::new(arr);
                let mut c = CountingCtx::new(ctx);
                c.begin_op();
                h.update(&mut c, p as u64 + 1);
                c.begin_op();
                let _ = h.snap(&mut c);
                hd.record(p, c.op_reads());
                c.begin_op();
                let _ = naive_collect(&arr, &mut c);
                hn.record(p, c.op_reads());
            });
        out.assert_no_panics();
    }
    rows.push(close_row(
        registry,
        &format!("double_collect_snap_reads_n{n}"),
        "double_collect_snap",
        "reads",
        n,
        Some(DoubleCollect::bounded_update_snap_reads(n)),
    ));
    rows.push(close_row(
        registry,
        &format!("naive_collect_reads_n{n}"),
        "naive_collect",
        "reads",
        n,
        Some(CollectArray::collect_reads(n)),
    ));
}

/// The multi-writer register: both ops are one collect plus one write,
/// schedule-independent.
fn mwreg_rows(
    opts: &ExpOpts,
    registry: &TelemetryRegistry,
    rows: &mut Vec<DistRow>,
    n: usize,
    seeds: u64,
) {
    let hw = registry.histogram(&format!("mwreg_write_reads_n{n}"));
    let hr = registry.histogram(&format!("mwreg_read_reads_n{n}"));
    for seed in 0..seeds {
        let reg = MwRegister::new(n);
        let (hw, hr) = (hw.clone(), hr.clone());
        let out = SimBuilder::new(reg.registers::<u64>())
            .owners(reg.owners())
            .strategy(SeededRandom::new(opts.seed ^ (0x3B + seed)))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut c = CountingCtx::new(ctx);
                for k in 0..OPS_PER_PROC {
                    c.begin_op();
                    reg.write(&mut c, (p * 10 + k) as u64);
                    hw.record(p, c.op_reads());
                    c.begin_op();
                    let _ = reg.read(&mut c);
                    hr.record(p, c.op_reads());
                }
            });
        out.assert_no_panics();
    }
    rows.push(close_row(
        registry,
        &format!("mwreg_write_reads_n{n}"),
        "mwreg_write",
        "reads",
        n,
        Some(MwRegister::op_reads(n)),
    ));
    rows.push(close_row(
        registry,
        &format!("mwreg_read_reads_n{n}"),
        "mwreg_read",
        "reads",
        n,
        Some(MwRegister::op_reads(n)),
    ));
}

/// Per-process register operations of a full approximate-agreement run
/// (collect mode) against the Theorem 5 bound, over round-robin plus
/// seeded-random schedules.
fn agreement_rows(
    opts: &ExpOpts,
    registry: &TelemetryRegistry,
    rows: &mut Vec<DistRow>,
    n: usize,
    seeds: u64,
) {
    let doe = 16.0;
    let eps = 1.0 / doe;
    let key = format!("agreement_register_ops_n{n}");
    let h = registry.histogram(&key);
    for s in 0..=seeds {
        let inputs: Vec<f64> = (0..n).map(|p| p as f64 / (n - 1).max(1) as f64).collect();
        let mut m = AgreementMachine::with_config(eps, inputs, Variant::Full, ScanMode::Collect);
        if s == 0 {
            m.run_all_round_robin(100_000_000);
        } else {
            let mut rng = StdRng::seed_from_u64(opts.seed ^ (0xA6 + s));
            while (0..n).any(|p| !m.is_done(p)) {
                let live: Vec<usize> = (0..n).filter(|&p| !m.is_done(p)).collect();
                let p = live[rng.gen_range(0..live.len())];
                m.step(p);
            }
        }
        for p in 0..n {
            h.record(p, m.register_ops_taken(p));
        }
    }
    rows.push(close_row(
        registry,
        &key,
        "agreement_full_run",
        "register_ops",
        n,
        Some(theorem5_bound(n, doe)),
    ));
}

/// The lock-based baseline runs on native threads only, so its
/// histogram is wall-clock microseconds per snap — no analytic step
/// bound exists (that is the point of the comparison).
fn lock_rows(opts: &ExpOpts, registry: &TelemetryRegistry, rows: &mut Vec<DistRow>, n: usize) {
    let iters = if opts.quick { 20 } else { 100 };
    let key = format!("lock_snap_micros_n{n}");
    let h = registry.histogram(&key);
    let lock = LockSnapshot::<u64>::new(n);
    std::thread::scope(|s| {
        for p in 0..n {
            let lock = lock.clone();
            let h = h.clone();
            s.spawn(move || {
                for k in 0..iters {
                    lock.update(p, k as u64);
                    let t = Instant::now();
                    let _ = lock.snap();
                    h.record(p, t.elapsed().as_micros() as u64);
                }
            });
        }
    });
    rows.push(close_row(registry, &key, "lock_snap", "micros", n, None));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_distributions_respect_every_bound() {
        let opts = ExpOpts {
            seed: 7,
            quick: true,
            threads: 1,
        };
        let dist = step_distributions(&opts);
        assert!(dist.rows.len() >= 10, "expected a row per (op, n)");
        for r in &dist.rows {
            assert!(r.hist.count > 0, "{} n={} recorded nothing", r.op, r.n);
            assert_ne!(r.within_bound(), Some(false), "{} n={}", r.op, r.n);
        }
        // Schedule-independent ops collapse onto the formula exactly.
        let lit = dist
            .rows
            .iter()
            .find(|r| r.op == "scan_literal" && r.metric == "reads" && r.n == 3)
            .unwrap();
        assert_eq!(lit.hist.max, ScanObject::literal_scan_reads(3));
        assert_eq!(lit.hist.p50(), lit.hist.max);
        // Wall-clock rows carry no bound.
        assert!(dist
            .rows
            .iter()
            .all(|r| (r.op == "lock_snap") == r.bound.is_none()));
    }

    #[test]
    fn distribution_registry_exports_valid_prometheus() {
        let opts = ExpOpts {
            seed: 1,
            quick: true,
            threads: 1,
        };
        let dist = step_distributions(&opts);
        let text = dist.registry.to_prometheus();
        apram_model::validate_prometheus(&text).expect("generated text must parse");
        assert!(text.contains("scan_literal_reads_n2"));
    }

    #[test]
    fn dist_row_json_shape() {
        let r = DistRow {
            op: "x".into(),
            metric: "reads",
            n: 2,
            bound: Some(7),
            hist: HistogramSnapshot::default(),
        };
        let j = r.to_json().to_compact();
        assert!(j.contains("\"paper_bound\":7"));
        assert!(j.contains("\"within_bound\":true"));
        let r2 = DistRow { bound: None, ..r };
        let j2 = r2.to_json().to_compact();
        assert!(j2.contains("\"paper_bound\":null"));
        assert!(j2.contains("\"within_bound\":null"));
    }
}
