//! E15 — serving-layer SLO and offline audit: the wait-free core behind
//! a socket.
//!
//! E13 and E14 measure the native backend in-process; E15 measures it
//! the way an operator would meet it — through `apram-serve`'s framed
//! TCP protocol under a multi-tenant load. For each auditable object
//! (`counter`, `maxreg`, `lwwmap-direct`) the experiment runs two
//! phases against real in-process servers:
//!
//! * **SLO phase** — flight recorder off, `tenants` concurrent clients
//!   replay a zipfian read/write mix while one tenant is killed
//!   mid-stream (socket dropped, no goodbye) and reconnects. The cell
//!   reports end-to-end op latency percentiles and whether every
//!   tenant — crasher included — finished its budget.
//! * **Audit phase** — a *fresh* server with the flight recorder in
//!   `Always` mode takes a small load, then the per-shard recorders are
//!   drained and every reconstructed history is checked for
//!   linearizability offline ([`apram_serve::run_audit`]).
//!
//! The audit load is deliberately small: the checker's bitmask search
//! caps histories at 128 ops ([`apram_history::check::MAX_OPS`]), and
//! merged counter/maxreg reads leave one span on *every* shard, so the
//! audit budgets are sized to keep each shard's history under the cap.
//! The SLO phase carries the volume; the audit phase carries the proof.
//!
//! The gates (emitted into `BENCH_e15.json` and enforced in CI via
//! `scripts/compare_bench.py --e15-gate`) are machine-independent:
//! worst-case SLO percentiles inside generous budgets (p50 ≤ 10 ms,
//! p99 ≤ 100 ms, p999 ≤ 1 s — loopback sockets are slow on shared
//! runners, wait-freedom is not in question at the transport), zero
//! recorder drops and zero non-linearizable sampled histories in the
//! audit, and every crash scenario's survivors (and the resurrected
//! crasher) completing their budgets. `available_parallelism` is
//! recorded so throughput numbers can be read in context.

use crate::{host_parallelism, ExpOpts};
use apram_model::telemetry::HistogramSnapshot;
use apram_model::{FlightMode, Json};
use apram_serve::{
    run_audit, run_load, serve, Client, LoadConfig, ServeConfig, TableConfig, AUDITABLE_OBJECTS,
};

/// The E15 objects, in emission order: exactly the objects the offline
/// audit can reconstruct typed histories for.
pub const E15_OBJECTS: [&str; 3] = AUDITABLE_OBJECTS;

/// One object's cell: the SLO run and its paired audit run.
#[derive(Clone, Debug)]
pub struct E15Row {
    /// Object name (one of [`E15_OBJECTS`]).
    pub object: &'static str,
    /// Concurrent tenants in the SLO phase.
    pub tenants: usize,
    /// Per-tenant op budget in the SLO phase.
    pub ops_per_tenant: u64,
    /// Total ops acknowledged `ST_OK` across tenants (SLO phase).
    pub total_ops: u64,
    /// Wall-clock of the SLO load.
    pub elapsed_secs: f64,
    /// `total_ops / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Merged end-to-end op latency (nanoseconds, SLO phase).
    pub latency: HistogramSnapshot,
    /// Reconnects performed by the killed tenant (≥ 1 proves the crash
    /// happened).
    pub crash_reconnects: u64,
    /// Every tenant — including the resurrected crasher — finished its
    /// full budget.
    pub completed: bool,
    /// Ops in the audit phase (all tenants, audit server).
    pub audit_ops: u64,
    /// Op spans reconstructed from the audit server's flight recorders.
    pub audit_spans: u64,
    /// Per-shard histories checked.
    pub audit_histories: u64,
    /// Flight events dropped by the audit recorders (must be 0 for the
    /// audit to be sound).
    pub audit_dropped: u64,
    /// Every sampled history linearized.
    pub audit_linearizable: bool,
    /// Checker failure descriptions (empty when linearizable).
    pub audit_failures: Vec<String>,
}

impl E15Row {
    /// JSON record for `BENCH_e15.json`. Wall-clock-derived fields
    /// (`elapsed_secs`, `ops_per_sec`, the `*_ns` percentiles) are
    /// volatile across runs; `scripts/compare_bench.py` excludes them
    /// from byte diffs and gates on the budget relations instead.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("object", Json::Str(self.object.into())),
            ("tenants", Json::UInt(self.tenants as u64)),
            ("ops_per_tenant", Json::UInt(self.ops_per_tenant)),
            ("total_ops", Json::UInt(self.total_ops)),
            ("elapsed_secs", Json::Float(self.elapsed_secs)),
            ("ops_per_sec", Json::Float(self.ops_per_sec)),
            ("p50_ns", Json::UInt(self.latency.p50())),
            ("p99_ns", Json::UInt(self.latency.p99())),
            ("p999_ns", Json::UInt(self.latency.p999())),
            ("max_ns", Json::UInt(self.latency.max)),
            ("mean_ns", Json::Float(self.latency.mean())),
            ("crash_reconnects", Json::UInt(self.crash_reconnects)),
            ("completed", Json::Bool(self.completed)),
            ("audit_ops", Json::UInt(self.audit_ops)),
            ("audit_spans", Json::UInt(self.audit_spans)),
            ("audit_histories", Json::UInt(self.audit_histories)),
            ("audit_dropped", Json::UInt(self.audit_dropped)),
            ("audit_linearizable", Json::Bool(self.audit_linearizable)),
            (
                "audit_failures",
                Json::Arr(
                    self.audit_failures
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Everything one E15 run produces: the grid plus the Prometheus scrape
/// of the first SLO server (the `--telemetry` artifact — it carries the
/// `serve_*` request counters and the native backend's telemetry).
pub struct E15Out {
    /// One row per object.
    pub rows: Vec<E15Row>,
    /// `/metrics` scrape text captured after the first SLO load.
    pub prom: String,
}

/// SLO-phase load shape for one object.
fn slo_config(object: &'static str, quick: bool) -> LoadConfig {
    let mut cfg = LoadConfig::new(object);
    cfg.tenants = if quick { 4 } else { 8 };
    cfg.ops_per_tenant = if quick { 200 } else { 1000 };
    cfg.keys = 64;
    cfg.crash_tenant = true;
    cfg
}

/// Audit-phase load shape: small enough that every shard's
/// reconstructed history stays under the checker's 128-op cap (counter
/// and maxreg reads leave one span on *every* shard: per-shard ops ≈
/// reads + updates/shards must stay < 128).
fn audit_config(object: &'static str) -> LoadConfig {
    let mut cfg = LoadConfig::new(object);
    match object {
        // 3 × 40 at 50% reads over 2 shards: ≈ 60 + 30 = 90 per shard.
        "counter" | "maxreg" => {
            cfg.tenants = 3;
            cfg.ops_per_tenant = 40;
        }
        // Keyed: spans split per shard by key; zipfian skew over 16
        // keys keeps the hot shard ≈ 100.
        _ => {
            cfg.tenants = 4;
            cfg.ops_per_tenant = 40;
            cfg.keys = 16;
        }
    }
    cfg
}

/// Run one object's SLO + audit cell; `scrape` asks for the `/metrics`
/// text after the SLO load (one scrape per run is plenty).
fn e15_cell(object: &'static str, opts: &ExpOpts, scrape: bool) -> (E15Row, Option<String>) {
    // SLO phase: recorder off, crash mid-stream.
    let slo_cfg = slo_config(object, opts.quick);
    let table = TableConfig::new(&[object], 2, slo_cfg.tenants * 2);
    let server = serve(&ServeConfig::local(table)).expect("bind SLO server");
    let report = run_load(server.addr(), 0, &slo_cfg).expect("SLO load");
    let prom = scrape.then(|| Client::scrape_metrics(server.addr()).expect("metrics scrape"));
    server.shutdown();

    let latency = report.merged_latency();
    let elapsed = report.elapsed.as_secs_f64();
    let total_ops = report.total_ops();

    // Audit phase: fresh server, recorder always on, small load.
    let audit_cfg = audit_config(object);
    let table =
        TableConfig::new(&[object], 2, audit_cfg.tenants * 2).flight(FlightMode::Always, 1 << 12);
    let server = serve(&ServeConfig::local(table)).expect("bind audit server");
    let audit_report = run_load(server.addr(), 0, &audit_cfg).expect("audit load");
    let logs = server.drain_flight(object);
    let audit = run_audit(object, &logs, opts.threads);
    server.shutdown();

    let row = E15Row {
        object,
        tenants: slo_cfg.tenants,
        ops_per_tenant: slo_cfg.ops_per_tenant,
        total_ops,
        elapsed_secs: elapsed,
        ops_per_sec: total_ops as f64 / elapsed.max(1e-9),
        latency,
        crash_reconnects: report.tenants[0].reconnects,
        completed: report.all_completed(&slo_cfg) && audit_report.all_completed(&audit_cfg),
        audit_ops: audit_report.total_ops(),
        audit_spans: audit.spans,
        audit_histories: audit.histories,
        audit_dropped: audit.dropped,
        audit_linearizable: audit.all_linearizable,
        audit_failures: audit.failures,
    };
    (row, prom)
}

/// Run the full E15 grid: one SLO + audit cell per auditable object.
pub fn e15_run(opts: &ExpOpts) -> E15Out {
    let mut rows = Vec::new();
    let mut prom = String::new();
    for (i, object) in E15_OBJECTS.into_iter().enumerate() {
        let (row, scraped) = e15_cell(object, opts, i == 0);
        if let Some(text) = scraped {
            prom = text;
        }
        rows.push(row);
    }
    E15Out { rows, prom }
}

/// SLO budgets in nanoseconds: generous enough to be machine-
/// independent (loopback TCP on a loaded CI runner), tight enough that
/// a stalled tenant — a slot leak, a blocked shard — blows straight
/// through them.
pub const E15_P50_BUDGET_NS: u64 = 10_000_000;
/// p99 budget (100 ms).
pub const E15_P99_BUDGET_NS: u64 = 100_000_000;
/// p999 budget (1 s).
pub const E15_P999_BUDGET_NS: u64 = 1_000_000_000;

/// The gate section of `BENCH_e15.json`: worst-case percentiles across
/// the grid vs their budgets, audit soundness, and crash survival.
pub fn e15_gates(rows: &[E15Row]) -> Json {
    let worst = |f: &dyn Fn(&E15Row) -> u64| rows.iter().map(f).max().unwrap_or(0);
    let worst_p50 = worst(&|r| r.latency.p50());
    let worst_p99 = worst(&|r| r.latency.p99());
    let worst_p999 = worst(&|r| r.latency.p999());
    Json::obj([
        ("available_parallelism", Json::UInt(host_parallelism())),
        ("worst_p50_ns", Json::UInt(worst_p50)),
        ("worst_p99_ns", Json::UInt(worst_p99)),
        ("worst_p999_ns", Json::UInt(worst_p999)),
        ("p50_budget_ns", Json::UInt(E15_P50_BUDGET_NS)),
        ("p99_budget_ns", Json::UInt(E15_P99_BUDGET_NS)),
        ("p999_budget_ns", Json::UInt(E15_P999_BUDGET_NS)),
        (
            "slo_within_budget",
            Json::Bool(
                worst_p50 <= E15_P50_BUDGET_NS
                    && worst_p99 <= E15_P99_BUDGET_NS
                    && worst_p999 <= E15_P999_BUDGET_NS,
            ),
        ),
        (
            "audit_histories",
            Json::UInt(rows.iter().map(|r| r.audit_histories).sum()),
        ),
        (
            "audit_dropped",
            Json::UInt(rows.iter().map(|r| r.audit_dropped).sum()),
        ),
        (
            "audit_all_linearizable",
            Json::Bool(rows.iter().all(|r| r.audit_linearizable)),
        ),
        (
            "crash_survivors_completed",
            Json::Bool(rows.iter().all(|r| r.completed && r.crash_reconnects >= 1)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tiny quick cell end to end (counter, scrape on): the row is
    /// structurally sound, the audit is sound, and the gates pass on a
    /// healthy stack.
    #[test]
    fn counter_cell_and_gates() {
        let opts = ExpOpts {
            quick: true,
            ..Default::default()
        };
        let (row, prom) = e15_cell("counter", &opts, true);
        assert_eq!(row.total_ops, row.tenants as u64 * row.ops_per_tenant);
        assert!(row.completed, "{row:?}");
        assert!(row.crash_reconnects >= 1);
        assert_eq!(row.audit_dropped, 0);
        assert!(row.audit_histories >= 1);
        assert!(row.audit_linearizable, "{:?}", row.audit_failures);
        assert_eq!(row.latency.count, row.total_ops);
        let prom = prom.expect("scrape requested");
        assert!(prom.contains("serve_requests_total"), "{prom}");

        let gates = e15_gates(std::slice::from_ref(&row));
        let parsed = apram_model::json::parse(&gates.to_compact()).unwrap();
        for key in [
            "slo_within_budget",
            "audit_all_linearizable",
            "crash_survivors_completed",
        ] {
            assert!(
                matches!(parsed.get(key), Some(Json::Bool(true))),
                "{key}: {gates:?}"
            );
        }
        assert_eq!(
            parsed.get("audit_dropped").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    /// The audit budgets stay under the checker's 128-op per-shard cap
    /// by construction (the sizing argument in `audit_config`'s doc).
    #[test]
    fn audit_budgets_fit_the_checker() {
        for object in E15_OBJECTS {
            let cfg = audit_config(object);
            let total = cfg.tenants as u64 * cfg.ops_per_tenant;
            // Worst case per shard: every read spans every shard plus
            // this shard's half of the updates (2 shards).
            assert!(total / 2 + total / 4 < 128, "{object}: {total} total ops");
        }
    }
}
