//! Operation records and the real-time precedence order `≺_H`.
//!
//! "Each history H induces a partial 'real-time' order `≺_H` on its
//! operations: `p ≺_H q` if the response for p precedes the invocation for
//! q. Operations unrelated by `≺_H` are said to be concurrent."
//! (Section 3.2.)

use crate::event::{Event, History, ProcId};

/// One operation of a history: an invocation plus (if present) its
/// matching response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord<O, R> {
    /// The executing process.
    pub proc: ProcId,
    /// Zero-based index of this operation among `proc`'s operations.
    pub seq: usize,
    /// The operation (with arguments).
    pub op: O,
    /// The response, or `None` while pending.
    pub resp: Option<R>,
    /// Event index of the invocation.
    pub invoke_at: usize,
    /// Event index of the response (`usize::MAX` while pending).
    pub respond_at: usize,
}

impl<O, R> OpRecord<O, R> {
    /// `true` when the operation has no matching response in the history.
    pub fn is_pending(&self) -> bool {
        self.resp.is_none()
    }
}

/// The operations of a history, in invocation order, plus precedence
/// queries.
#[derive(Clone, Debug)]
pub struct Ops<O, R> {
    records: Vec<OpRecord<O, R>>,
}

impl<O: Clone, R: Clone> Ops<O, R> {
    /// Extract the operations of a well-formed history.
    ///
    /// # Panics
    /// Panics when the history is not well-formed; callers should validate
    /// with [`History::well_formed`] first when the source is untrusted.
    pub fn extract(h: &History<O, R>) -> Self {
        assert!(
            h.well_formed(),
            "cannot extract operations of a malformed history"
        );
        let mut records: Vec<OpRecord<O, R>> = Vec::new();
        let mut open: std::collections::BTreeMap<ProcId, usize> = Default::default();
        let mut counts: std::collections::BTreeMap<ProcId, usize> = Default::default();
        for (i, e) in h.events().iter().enumerate() {
            match e {
                Event::Invoke { proc, op } => {
                    let seq = counts.entry(*proc).or_insert(0);
                    open.insert(*proc, records.len());
                    records.push(OpRecord {
                        proc: *proc,
                        seq: *seq,
                        op: op.clone(),
                        resp: None,
                        invoke_at: i,
                        respond_at: usize::MAX,
                    });
                    *seq += 1;
                }
                Event::Respond { proc, resp } => {
                    let idx = open.remove(proc).expect("well-formed");
                    records[idx].resp = Some(resp.clone());
                    records[idx].respond_at = i;
                }
            }
        }
        Ops { records }
    }

    /// All operation records, in invocation order.
    pub fn records(&self) -> &[OpRecord<O, R>] {
        &self.records
    }

    /// Number of operations (completed and pending).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the history had no operations.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Real-time precedence: `a ≺_H b` iff `a`'s response precedes `b`'s
    /// invocation. Pending operations never precede anything.
    pub fn precedes(&self, a: usize, b: usize) -> bool {
        self.records[a].respond_at < self.records[b].invoke_at
    }

    /// `true` when neither operation precedes the other.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// Indices of the completed operations.
    pub fn completed(&self) -> Vec<usize> {
        (0..self.records.len())
            .filter(|&i| !self.records[i].is_pending())
            .collect()
    }

    /// Indices of the pending operations.
    pub fn pending(&self) -> Vec<usize> {
        (0..self.records.len())
            .filter(|&i| self.records[i].is_pending())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> History<&'static str, u32> {
        // P0: |--a--|        |--c--|
        // P1:     |-----b--------|
        let mut h = History::new();
        h.invoke(0, "a"); // op 0
        h.invoke(1, "b"); // op 1
        h.respond(0, 10);
        h.invoke(0, "c"); // op 2
        h.respond(1, 11);
        h.respond(0, 12);
        h
    }

    #[test]
    fn extraction_pairs_events() {
        let ops = Ops::extract(&sample());
        assert_eq!(ops.len(), 3);
        assert_eq!(ops.records()[0].op, "a");
        assert_eq!(ops.records()[0].resp, Some(10));
        assert_eq!(ops.records()[2].proc, 0);
        assert_eq!(ops.records()[2].seq, 1);
        assert!(!ops.is_empty());
    }

    #[test]
    fn precedence_matches_definition() {
        let ops = Ops::extract(&sample());
        assert!(ops.precedes(0, 2)); // a before c (same process)
        assert!(!ops.precedes(0, 1)); // a and b overlap
        assert!(ops.concurrent(0, 1));
        assert!(ops.concurrent(1, 2)); // b overlaps c
        assert!(!ops.precedes(2, 1));
    }

    #[test]
    fn pending_ops_never_precede() {
        let mut h = History::new();
        h.invoke(0, "a"); // pending forever
        h.invoke(1, "b");
        h.respond(1, 1);
        let ops = Ops::extract(&h);
        assert_eq!(ops.pending(), vec![0]);
        assert_eq!(ops.completed(), vec![1]);
        assert!(!ops.precedes(0, 1));
        assert!(ops.records()[0].is_pending());
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn extraction_rejects_malformed() {
        let mut h: History<&str, u32> = History::new();
        h.respond(3, 0);
        let _ = Ops::extract(&h);
    }

    /// Lemma 13 over random histories: "Let H be a history with
    /// operations p, q, r, s such that p precedes q, r precedes s, and p
    /// and s are concurrent. Then r precedes q." This is the interval-
    /// order property every real-time precedence relation satisfies;
    /// the lingraph lemmas lean on it.
    #[test]
    fn lemma_13_property() {
        use proptest::prelude::*;
        use proptest::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        runner
            .run(
                &proptest::collection::vec((0usize..4, 1u32..8, 0u32..8), 1..10),
                |raw| {
                    // Build a well-formed history from per-process
                    // serialized intervals.
                    let mut next_free = [0u32; 4];
                    let mut spans: Vec<(u32, u32, usize)> = Vec::new();
                    for (proc, dur, gap) in raw {
                        let start = next_free[proc] + gap;
                        let end = start + dur;
                        next_free[proc] = end + 1;
                        spans.push((start, end, proc));
                    }
                    // Emit events by time: invocation at start, response
                    // at end (ties broken responses-first; the lemma is
                    // position-based, so any tie-break is valid).
                    let mut evs: Vec<(u32, bool, usize)> = Vec::new();
                    for (i, &(s, e, _)) in spans.iter().enumerate() {
                        evs.push((s, true, i));
                        evs.push((e, false, i));
                    }
                    evs.sort_by_key(|&(t, is_inv, _)| (t, is_inv));
                    let mut h: History<usize, usize> = History::new();
                    for (_, is_inv, i) in evs {
                        if is_inv {
                            h.invoke(spans[i].2, i);
                        } else {
                            h.respond(spans[i].2, i);
                        }
                    }
                    prop_assert!(h.well_formed());
                    let ops = Ops::extract(&h);
                    let k = ops.len();
                    for p in 0..k {
                        for q in 0..k {
                            for r in 0..k {
                                for s in 0..k {
                                    if ops.precedes(p, q)
                                        && ops.precedes(r, s)
                                        && ops.concurrent(p, s)
                                    {
                                        prop_assert!(
                                            ops.precedes(r, q),
                                            "Lemma 13 violated: p={p} q={q} r={r} s={s}"
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Ok(())
                },
            )
            .unwrap();
    }

    #[test]
    fn lemma_13_sanity() {
        // Lemma 13: if p precedes q, r precedes s, and p,s concurrent,
        // then r precedes q. Check on a concrete witness history.
        let mut h: History<&str, u32> = History::new();
        h.invoke(2, "r"); // op 0 = r
        h.respond(2, 0);
        h.invoke(0, "p"); // op 1 = p
        h.invoke(3, "s"); // op 2 = s  (concurrent with p)
        h.respond(0, 0);
        h.invoke(1, "q"); // op 3 = q
        h.respond(1, 0);
        h.respond(3, 0);
        let ops = Ops::extract(&h);
        let (r, p, s, q) = (0, 1, 2, 3);
        assert!(ops.precedes(p, q));
        assert!(ops.precedes(r, s));
        assert!(ops.concurrent(p, s));
        assert!(ops.precedes(r, q)); // the lemma's conclusion
    }
}
