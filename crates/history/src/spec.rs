//! Sequential specifications.
//!
//! The paper considers "only objects whose sequential specifications are
//! *total* and *deterministic*: if the object has a pending invocation,
//! then it has a unique matching enabled response" (Section 3.2). Those
//! are [`DetSpec`]s. The approximate agreement object of Figure 1,
//! however, is specified by a *relation* (any `y` with
//! `range(Y ∪ {y}) ⊆ range(X)` and `|range(Y ∪ {y})| < ε` is legal), so
//! the checker is written against the weaker [`NondetSpec`] interface,
//! which every `DetSpec` satisfies via a blanket implementation.

use crate::event::ProcId;
use std::fmt::Debug;

/// A total, deterministic sequential specification.
pub trait DetSpec {
    /// Abstract object state.
    type State: Clone;
    /// Operations (including arguments).
    type Op: Clone + Debug;
    /// Responses.
    type Resp: Clone + PartialEq + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Apply `op` by process `proc`, mutating the state and returning the
    /// unique enabled response. Totality means this must succeed on every
    /// state.
    fn apply(&self, state: &mut Self::State, proc: ProcId, op: &Self::Op) -> Self::Resp;

    /// Run a sequence of operations from the initial state, returning the
    /// responses. Convenience for tests and the universal construction.
    fn run(&self, ops: &[(ProcId, Self::Op)]) -> (Self::State, Vec<Self::Resp>) {
        let mut s = self.initial();
        let resps = ops
            .iter()
            .map(|(p, op)| self.apply(&mut s, *p, op))
            .collect();
        (s, resps)
    }
}

/// A (possibly) nondeterministic sequential specification, given as a
/// transition *relation*: `step` returns the successor state when
/// `(state, op, resp)` is a legal transition, and `None` otherwise.
pub trait NondetSpec {
    /// Abstract object state.
    type State: Clone;
    /// Operations (including arguments).
    type Op: Clone + Debug;
    /// Responses.
    type Resp: Clone + Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// The transition relation, deterministic *given the response*.
    fn step(
        &self,
        state: &Self::State,
        proc: ProcId,
        op: &Self::Op,
        resp: &Self::Resp,
    ) -> Option<Self::State>;
}

/// Every deterministic spec is a nondeterministic one whose relation
/// accepts exactly the response `apply` computes.
impl<S: DetSpec> NondetSpec for S {
    type State = S::State;
    type Op = S::Op;
    type Resp = S::Resp;

    fn initial(&self) -> Self::State {
        DetSpec::initial(self)
    }

    fn step(
        &self,
        state: &Self::State,
        proc: ProcId,
        op: &Self::Op,
        resp: &Self::Resp,
    ) -> Option<Self::State> {
        let mut next = state.clone();
        let expected = self.apply(&mut next, proc, op);
        (&expected == resp).then_some(next)
    }
}

/// A single read/write register specification; the base object of the
/// asynchronous PRAM model itself, and the simplest checker test case.
#[derive(Clone, Debug, Default)]
pub struct RegisterSpec;

/// Register operations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// Write a value.
    Write(u64),
    /// Read the current value.
    Read,
}

/// Register responses.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegResp {
    /// Acknowledgement of a write.
    Ack,
    /// The value read.
    Value(u64),
}

impl DetSpec for RegisterSpec {
    type State = u64;
    type Op = RegOp;
    type Resp = RegResp;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &mut u64, _proc: ProcId, op: &RegOp) -> RegResp {
        match op {
            RegOp::Write(v) => {
                *state = *v;
                RegResp::Ack
            }
            RegOp::Read => RegResp::Value(*state),
        }
    }
}

/// A FIFO queue specification with a *total* `deq` (returns `None` on
/// empty, per the paper's discussion of why partial operations are
/// excluded). Queues solve consensus and therefore have no wait-free
/// asynchronous-PRAM implementation — this spec exists to test the
/// checker, not to be implemented.
#[derive(Clone, Debug, Default)]
pub struct QueueSpec;

/// Queue operations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// Enqueue a value.
    Enq(u64),
    /// Dequeue the head (total: returns `None` when empty).
    Deq,
}

/// Queue responses.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueueResp {
    /// Acknowledgement of an enqueue.
    Ack,
    /// The dequeued head, or `None` when the queue was empty.
    Head(Option<u64>),
}

impl DetSpec for QueueSpec {
    type State = std::collections::VecDeque<u64>;
    type Op = QueueOp;
    type Resp = QueueResp;

    fn initial(&self) -> Self::State {
        Default::default()
    }

    fn apply(&self, state: &mut Self::State, _proc: ProcId, op: &QueueOp) -> QueueResp {
        match op {
            QueueOp::Enq(v) => {
                state.push_back(*v);
                QueueResp::Ack
            }
            QueueOp::Deq => QueueResp::Head(state.pop_front()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_spec_is_a_register() {
        let spec = RegisterSpec;
        let (state, resps) = spec.run(&[(0, RegOp::Read), (1, RegOp::Write(5)), (0, RegOp::Read)]);
        assert_eq!(state, 5);
        assert_eq!(
            resps,
            vec![RegResp::Value(0), RegResp::Ack, RegResp::Value(5)]
        );
    }

    #[test]
    fn queue_spec_is_fifo_and_total() {
        let spec = QueueSpec;
        let (_, resps) = spec.run(&[
            (0, QueueOp::Deq),
            (0, QueueOp::Enq(1)),
            (1, QueueOp::Enq(2)),
            (0, QueueOp::Deq),
            (1, QueueOp::Deq),
            (1, QueueOp::Deq),
        ]);
        assert_eq!(
            resps,
            vec![
                QueueResp::Head(None),
                QueueResp::Ack,
                QueueResp::Ack,
                QueueResp::Head(Some(1)),
                QueueResp::Head(Some(2)),
                QueueResp::Head(None),
            ]
        );
    }

    #[test]
    fn blanket_nondet_accepts_only_the_computed_response() {
        let spec = RegisterSpec;
        let s0 = NondetSpec::initial(&spec);
        assert!(spec
            .step(&s0, 0, &RegOp::Read, &RegResp::Value(0))
            .is_some());
        assert!(spec
            .step(&s0, 0, &RegOp::Read, &RegResp::Value(1))
            .is_none());
        let s1 = spec.step(&s0, 0, &RegOp::Write(9), &RegResp::Ack).unwrap();
        assert_eq!(s1, 9);
    }
}
