//! A Wing–Gong style linearizability checker.
//!
//! The checker searches for a legal sequential history `S` that (a) agrees
//! with `complete(H')` per process and (b) extends the real-time order
//! `≺_H` (Section 3.2). It explores linearization orders depth-first,
//! always choosing among *minimal* operations — those whose invocation
//! precedes every response still outstanding — which is exactly the
//! constraint `≺_H ⊆ ≺_S`.
//!
//! Pending invocations are handled per the definition: they may be dropped
//! or (for deterministic specs, where the unique enabled response is
//! computable) completed and linearized. Nondeterministic specs use
//! *strict* mode: pending operations are dropped, which is sound whenever
//! their effects were not observed by any completed operation.
//!
//! Failed `(remaining-set, state)` configurations are memoized when the
//! spec state is hashable ([`check_linearizable`]); an unmemoized variant
//! ([`check_linearizable_nomemo`]) covers states like the `f64` sets of
//! the approximate agreement spec.

use crate::event::History;
use crate::explain::{BlockReason, BlockedOp, FailureExplanation};
use crate::ops::{OpRecord, Ops};
use crate::spec::{DetSpec, NondetSpec};
use apram_model::SpanRecorder;
use std::collections::HashSet;
use std::hash::Hash;

/// Maximum number of operations the bitmask-based search supports.
pub const MAX_OPS: usize = 128;

/// Checker tuning knobs.
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Abort after exploring this many search nodes.
    pub node_budget: u64,
    /// Allow pending operations to be completed-and-linearized
    /// (deterministic specs only; ignored by the nondet entry points).
    pub complete_pending: bool,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            node_budget: 20_000_000,
            complete_pending: true,
        }
    }
}

/// Why a history failed the check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The event sequence itself is not well-formed.
    Malformed,
    /// Exhaustive search found no legal linearization.
    NotLinearizable {
        /// Number of search nodes explored before concluding.
        explored: u64,
        /// Structured account of the failure: the longest linearizable
        /// prefix, why each remaining operation is blocked, and the
        /// reduced real-time precedence edges. `None` only for checkers
        /// that do not track it (e.g. the sequential-consistency one,
        /// where real time plays no role).
        explanation: Option<Box<FailureExplanation>>,
    },
    /// The history has more than [`MAX_OPS`] operations.
    TooLarge,
}

/// Result of a linearizability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// A witness linearization: indices into [`Ops::records`], in
    /// linearized order. Dropped pending operations do not appear.
    Linearizable(Vec<usize>),
    /// The history is not linearizable (or malformed / too large).
    Violation(Violation),
    /// The node budget was exhausted before the search concluded.
    BudgetExhausted,
}

impl CheckOutcome {
    /// `true` for the `Linearizable` case.
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckOutcome::Linearizable(_))
    }
}

trait Memo<S> {
    fn seen_failure(&mut self, mask: u128, state: &S) -> bool;
    fn record_failure(&mut self, mask: u128, state: &S);
}

struct NoMemo;
impl<S> Memo<S> for NoMemo {
    fn seen_failure(&mut self, _: u128, _: &S) -> bool {
        false
    }
    fn record_failure(&mut self, _: u128, _: &S) {}
}

struct HashMemo<S>(HashSet<(u128, S)>);
impl<S: Hash + Eq + Clone> Memo<S> for HashMemo<S> {
    fn seen_failure(&mut self, mask: u128, state: &S) -> bool {
        self.0.contains(&(mask, state.clone()))
    }
    fn record_failure(&mut self, mask: u128, state: &S) {
        self.0.insert((mask, state.clone()));
    }
}

/// Completion function for pending operations (deterministic specs).
type Completer<'a, S> = &'a dyn Fn(&mut S, usize);

struct Search<'a, Sp: NondetSpec, M> {
    spec: &'a Sp,
    records: &'a [OpRecord<Sp::Op, Sp::Resp>],
    cfg: &'a CheckerConfig,
    memo: M,
    explored: u64,
    memo_hits: u64,
    backtracks: u64,
    witness: Vec<usize>,
    /// Longest witness prefix reached at any point in the search; on
    /// failure this is the frontier of the explanation.
    best_prefix: Vec<usize>,
    /// Completion function for pending ops (deterministic specs only).
    complete_pending: Option<Completer<'a, Sp::State>>,
}

enum SearchResult {
    Found,
    Exhausted,
    OverBudget,
}

impl<'a, Sp: NondetSpec, M: Memo<Sp::State>> Search<'a, Sp, M> {
    /// `remaining` has bit `i` set when op `i` is not yet linearized.
    fn dfs(&mut self, remaining: u128, state: &Sp::State) -> SearchResult {
        self.explored += 1;
        if self.explored > self.cfg.node_budget {
            return SearchResult::OverBudget;
        }
        // Done when every *completed* op has been linearized; remaining
        // pending ops are dropped (extending H with their responses is
        // optional).
        let mut any_completed_left = false;
        let mut min_respond = usize::MAX;
        for i in 0..self.records.len() {
            if remaining & (1u128 << i) != 0 {
                let r = &self.records[i];
                if !r.is_pending() {
                    any_completed_left = true;
                    min_respond = min_respond.min(r.respond_at);
                }
            }
        }
        if !any_completed_left {
            return SearchResult::Found;
        }
        if self.memo.seen_failure(remaining, state) {
            self.memo_hits += 1;
            return SearchResult::Exhausted;
        }
        for i in 0..self.records.len() {
            if remaining & (1u128 << i) == 0 {
                continue;
            }
            let r = &self.records[i];
            // Minimality: no still-remaining op responded before `i`'s
            // invocation; otherwise that op must be linearized first.
            if r.invoke_at > min_respond {
                continue;
            }
            let next_remaining = remaining & !(1u128 << i);
            if let Some(resp) = &r.resp {
                if let Some(next) = self.spec.step(state, r.proc, &r.op, resp) {
                    self.push_witness(i);
                    match self.dfs(next_remaining, &next) {
                        SearchResult::Found => return SearchResult::Found,
                        SearchResult::OverBudget => return SearchResult::OverBudget,
                        SearchResult::Exhausted => {
                            self.witness.pop();
                            self.backtracks += 1;
                        }
                    }
                }
            } else if let Some(complete) = self.complete_pending {
                // Try linearizing the pending op with its spec-computed
                // effect (the unique enabled response of a det spec).
                let mut next = state.clone();
                complete(&mut next, i);
                self.push_witness(i);
                match self.dfs(next_remaining, &next) {
                    SearchResult::Found => return SearchResult::Found,
                    SearchResult::OverBudget => return SearchResult::OverBudget,
                    SearchResult::Exhausted => {
                        self.witness.pop();
                        self.backtracks += 1;
                    }
                }
                // Also covered: *not* linearizing it, because the done
                // condition ignores pending ops.
            }
        }
        self.memo.record_failure(remaining, state);
        SearchResult::Exhausted
    }

    fn push_witness(&mut self, i: usize) {
        self.witness.push(i);
        if self.witness.len() > self.best_prefix.len() {
            self.best_prefix.clone_from(&self.witness);
        }
    }

    /// Build the failure explanation after an exhausted search: replay
    /// the longest legal prefix found, then classify every remaining
    /// operation by what blocks it at that frontier.
    fn explain(&self, init: &Sp::State) -> FailureExplanation {
        let n = self.records.len();
        let full: u128 = if n == MAX_OPS {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        let mut state = init.clone();
        let mut remaining = full;
        for &i in &self.best_prefix {
            remaining &= !(1u128 << i);
            let r = &self.records[i];
            state = match (&r.resp, self.complete_pending) {
                (Some(resp), _) => self
                    .spec
                    .step(&state, r.proc, &r.op, resp)
                    .expect("best prefix was legal when first explored"),
                (None, Some(complete)) => {
                    let mut next = state.clone();
                    complete(&mut next, i);
                    next
                }
                (None, None) => unreachable!("pending op linearized without a completer"),
            };
        }
        // The minimality frontier among what is left: the earliest
        // response of a still-remaining completed op bounds which
        // invocations may linearize next.
        let mut min_respond = usize::MAX;
        let mut min_idx = None;
        for i in 0..n {
            if remaining & (1u128 << i) != 0 {
                let r = &self.records[i];
                if !r.is_pending() && r.respond_at < min_respond {
                    min_respond = r.respond_at;
                    min_idx = Some(i);
                }
            }
        }
        let mut blocked = Vec::new();
        for i in 0..n {
            if remaining & (1u128 << i) == 0 {
                continue;
            }
            let r = &self.records[i];
            let reason = if r.invoke_at > min_respond {
                BlockReason::Precedence {
                    after: min_idx.expect("min_respond is finite"),
                }
            } else if let Some(resp) = &r.resp {
                match self.spec.step(&state, r.proc, &r.op, resp) {
                    None => BlockReason::SpecRejected,
                    Some(_) => BlockReason::DeadEnd,
                }
            } else if self.complete_pending.is_some() {
                BlockReason::DeadEnd
            } else {
                BlockReason::Pending
            };
            blocked.push(BlockedOp { op: i, reason });
        }
        // Real-time precedence over all ops, transitively reduced.
        let precedes = |a: usize, b: usize| self.records[a].respond_at < self.records[b].invoke_at;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b
                    && precedes(a, b)
                    && !(0..n).any(|c| c != a && c != b && precedes(a, c) && precedes(c, b))
                {
                    edges.push((a, b));
                }
            }
        }
        FailureExplanation {
            frontier: self.best_prefix.clone(),
            blocked,
            edges,
        }
    }
}

/// Run the search to completion, report its counters into `spans` when
/// tracing, and convert the result into a [`CheckOutcome`] (building the
/// failure explanation on exhaustion).
fn conclude<Sp: NondetSpec, M: Memo<Sp::State>>(
    search: &mut Search<'_, Sp, M>,
    full: u128,
    init: &Sp::State,
    spans: Option<&mut SpanRecorder>,
) -> CheckOutcome {
    let result = search.dfs(full, init);
    if let Some(s) = spans {
        s.bump("nodes", search.explored);
        s.bump("memo_hits", search.memo_hits);
        s.bump("backtracks", search.backtracks);
    }
    match result {
        SearchResult::Found => CheckOutcome::Linearizable(std::mem::take(&mut search.witness)),
        SearchResult::OverBudget => CheckOutcome::BudgetExhausted,
        SearchResult::Exhausted => CheckOutcome::Violation(Violation::NotLinearizable {
            explored: search.explored,
            explanation: Some(Box::new(search.explain(init))),
        }),
    }
}

fn run_check<Sp: NondetSpec, M: Memo<Sp::State>>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
    memo: M,
    complete_pending: Option<Completer<'_, Sp::State>>,
    spans: Option<&mut SpanRecorder>,
) -> CheckOutcome {
    if !h.well_formed() {
        return CheckOutcome::Violation(Violation::Malformed);
    }
    let ops = Ops::extract(h);
    if ops.len() > MAX_OPS {
        return CheckOutcome::Violation(Violation::TooLarge);
    }
    let mut search = Search {
        spec,
        records: ops.records(),
        cfg,
        memo,
        explored: 0,
        memo_hits: 0,
        backtracks: 0,
        witness: Vec::new(),
        best_prefix: Vec::new(),
        complete_pending,
    };
    let full: u128 = if ops.len() == MAX_OPS {
        u128::MAX
    } else {
        (1u128 << ops.len()) - 1
    };
    let init = spec.initial();
    conclude(&mut search, full, &init, spans)
}

/// Check a history against a nondeterministic spec, memoizing failed
/// configurations. Pending operations are dropped (strict mode).
pub fn check_linearizable<Sp>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
) -> CheckOutcome
where
    Sp: NondetSpec,
    Sp::State: Hash + Eq,
{
    run_check(spec, h, cfg, HashMemo(HashSet::new()), None, None)
}

/// [`check_linearizable`], reporting search telemetry into a span: a
/// `"check"` child span is recorded under the currently open span with
/// `nodes`, `memo_hits`, and `backtracks` counters.
pub fn check_linearizable_traced<Sp>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
    spans: &mut SpanRecorder,
) -> CheckOutcome
where
    Sp: NondetSpec,
    Sp::State: Hash + Eq,
{
    spans.enter("check");
    let out = run_check(spec, h, cfg, HashMemo(HashSet::new()), None, Some(spans));
    spans.exit();
    out
}

/// Check without memoization; use when the spec state is not hashable
/// (e.g. the real-valued approximate agreement state). Pending operations
/// are dropped (strict mode).
pub fn check_linearizable_nomemo<Sp>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
) -> CheckOutcome
where
    Sp: NondetSpec,
{
    run_check(spec, h, cfg, NoMemo, None, None)
}

/// Check a history against a *deterministic* spec. When
/// `cfg.complete_pending` is set, pending invocations may be completed
/// with their (unique) spec response and linearized, per the "extended to
/// a well-formed history H' by adding zero or more responses" clause of
/// the linearizability definition.
pub fn check_linearizable_det<Sp>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
) -> CheckOutcome
where
    Sp: DetSpec,
    Sp::State: Hash + Eq,
{
    run_check_det(spec, h, cfg, None)
}

/// [`check_linearizable_det`], reporting search telemetry into a span
/// (see [`check_linearizable_traced`]).
pub fn check_linearizable_det_traced<Sp>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
    spans: &mut SpanRecorder,
) -> CheckOutcome
where
    Sp: DetSpec,
    Sp::State: Hash + Eq,
{
    spans.enter("check");
    let out = run_check_det(spec, h, cfg, Some(spans));
    spans.exit();
    out
}

fn run_check_det<Sp>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
    spans: Option<&mut SpanRecorder>,
) -> CheckOutcome
where
    Sp: DetSpec,
    Sp::State: Hash + Eq,
{
    if !h.well_formed() {
        return CheckOutcome::Violation(Violation::Malformed);
    }
    let ops = Ops::extract(h);
    if ops.len() > MAX_OPS {
        return CheckOutcome::Violation(Violation::TooLarge);
    }
    let records: Vec<OpRecord<Sp::Op, Sp::Resp>> = ops.records().to_vec();
    let records2 = records.clone();
    let completer = move |state: &mut Sp::State, i: usize| {
        let r = &records2[i];
        let _ = spec.apply(state, r.proc, &r.op);
    };
    let complete: Option<Completer<'_, Sp::State>> = if cfg.complete_pending {
        Some(&completer)
    } else {
        None
    };
    let mut search = Search {
        spec,
        records: &records,
        cfg,
        memo: HashMemo(HashSet::new()),
        explored: 0,
        memo_hits: 0,
        backtracks: 0,
        witness: Vec::new(),
        best_prefix: Vec::new(),
        complete_pending: complete,
    };
    let full: u128 = if records.len() == MAX_OPS {
        u128::MAX
    } else {
        (1u128 << records.len()) - 1
    };
    let init = DetSpec::initial(spec);
    conclude(&mut search, full, &init, spans)
}

/// Independently verify a witness: replays it through the spec and checks
/// that it extends the real-time order. Used by tests to guard the
/// checker itself.
pub fn verify_witness<Sp>(spec: &Sp, h: &History<Sp::Op, Sp::Resp>, witness: &[usize]) -> bool
where
    Sp: NondetSpec,
{
    let ops = Ops::extract(h);
    // Precedence: for every pair of completed ops a ≺_H b that both appear,
    // a must come first.
    let pos: std::collections::HashMap<usize, usize> =
        witness.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    for &a in witness {
        for &b in witness {
            if a != b && ops.precedes(a, b) && pos[&a] > pos[&b] {
                return false;
            }
        }
    }
    // Every completed op must appear exactly once.
    for i in ops.completed() {
        if !pos.contains_key(&i) {
            return false;
        }
    }
    // Legality: replay.
    let mut state = spec.initial();
    for &i in witness {
        let r = &ops.records()[i];
        match &r.resp {
            Some(resp) => match spec.step(&state, r.proc, &r.op, resp) {
                Some(next) => state = next,
                None => return false,
            },
            None => return false, // strict witnesses contain no pending ops
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RegOp, RegResp, RegisterSpec};

    type H = History<RegOp, RegResp>;

    fn cfg() -> CheckerConfig {
        CheckerConfig::default()
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = H::new();
        assert_eq!(
            check_linearizable(&RegisterSpec, &h, &cfg()),
            CheckOutcome::Linearizable(vec![])
        );
    }

    #[test]
    fn sequential_legal_history_passes() {
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(1));
        let out = check_linearizable(&RegisterSpec, &h, &cfg());
        match &out {
            CheckOutcome::Linearizable(w) => {
                assert!(verify_witness(&RegisterSpec, &h, w));
            }
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn stale_read_after_write_completes_fails() {
        // w(1) completes strictly before the read, yet the read sees 0.
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(0));
        assert!(matches!(
            check_linearizable(&RegisterSpec, &h, &cfg()),
            CheckOutcome::Violation(Violation::NotLinearizable { .. })
        ));
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        // The read overlaps the write: both 0 and 1 are legal.
        for seen in [0u64, 1] {
            let mut h = H::new();
            h.invoke(0, RegOp::Write(1));
            h.invoke(1, RegOp::Read);
            h.respond(1, RegResp::Value(seen));
            h.respond(0, RegResp::Ack);
            assert!(
                check_linearizable(&RegisterSpec, &h, &cfg()).is_ok(),
                "value {seen} should be legal"
            );
        }
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // Two sequential reads around a concurrent write: the first sees
        // the new value, the second the old one — not linearizable.
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1)); // concurrent with both reads
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(1)); // sees new
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(0)); // then sees old
        h.respond(0, RegResp::Ack);
        assert!(matches!(
            check_linearizable(&RegisterSpec, &h, &cfg()),
            CheckOutcome::Violation(Violation::NotLinearizable { .. })
        ));
    }

    #[test]
    fn pending_write_effect_requires_completion_mode() {
        // The write never responds, but a later read observes it; only
        // the det checker with complete_pending can accept this.
        let mut h = H::new();
        h.invoke(0, RegOp::Write(7)); // pending forever
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(7));
        // Strict mode drops the write, so Value(7) is illegal:
        assert!(matches!(
            check_linearizable(&RegisterSpec, &h, &cfg()),
            CheckOutcome::Violation(Violation::NotLinearizable { .. })
        ));
        // Completion mode accepts:
        assert!(check_linearizable_det(&RegisterSpec, &h, &cfg()).is_ok());
        // ... and with completion disabled it rejects again:
        let strict = CheckerConfig {
            complete_pending: false,
            ..cfg()
        };
        assert!(!check_linearizable_det(&RegisterSpec, &h, &strict).is_ok());
    }

    #[test]
    fn malformed_history_is_flagged() {
        let mut h = H::new();
        h.respond(0, RegResp::Ack);
        assert_eq!(
            check_linearizable(&RegisterSpec, &h, &cfg()),
            CheckOutcome::Violation(Violation::Malformed)
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut h = H::new();
        for p in 0..6 {
            h.invoke(p, RegOp::Write(p as u64));
        }
        for p in 0..6 {
            h.respond(p, RegResp::Ack);
        }
        let tiny = CheckerConfig {
            node_budget: 2,
            ..cfg()
        };
        assert_eq!(
            check_linearizable(&RegisterSpec, &h, &tiny),
            CheckOutcome::BudgetExhausted
        );
    }

    #[test]
    fn nomemo_agrees_on_small_histories() {
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(1));
        h.respond(0, RegResp::Ack);
        assert_eq!(
            check_linearizable(&RegisterSpec, &h, &cfg()).is_ok(),
            check_linearizable_nomemo(&RegisterSpec, &h, &cfg()).is_ok()
        );
    }

    #[test]
    fn failure_explanation_reports_frontier_and_reason() {
        // w(1) completes strictly before a read that sees 0: the write
        // linearizes, then the read's response is illegal.
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(0));
        let out = check_linearizable(&RegisterSpec, &h, &cfg());
        let CheckOutcome::Violation(Violation::NotLinearizable { explanation, .. }) = out else {
            panic!("expected NotLinearizable, got {out:?}");
        };
        let e = *explanation.expect("checker attaches an explanation");
        assert_eq!(e.frontier, vec![0]);
        assert_eq!(e.blocked.len(), 1);
        assert_eq!(e.blocked[0].op, 1);
        assert_eq!(e.blocked[0].reason, BlockReason::SpecRejected);
        assert_eq!(e.edges, vec![(0, 1)]);
        let ops = Ops::extract(&h);
        let text = e.render(&ops);
        assert!(text.contains("orders 1 of 2 operations"), "{text}");
        assert!(text.contains("spec rejects"), "{text}");
    }

    #[test]
    fn failure_explanation_names_blocking_precedence_edge() {
        // op 0: w(1) completes; op 1: read sees 0 (illegal after the
        // write); op 2: read sees 1, but its invocation follows op 1's
        // response, so the real-time edge op1 ≺ op2 blocks it from
        // rescuing the search.
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(0));
        h.invoke(2, RegOp::Read);
        h.respond(2, RegResp::Value(1));
        let out = check_linearizable(&RegisterSpec, &h, &cfg());
        let CheckOutcome::Violation(Violation::NotLinearizable { explanation, .. }) = out else {
            panic!("expected NotLinearizable, got {out:?}");
        };
        let e = *explanation.expect("checker attaches an explanation");
        assert_eq!(e.frontier, vec![0]);
        assert!(e.blocked.contains(&crate::explain::BlockedOp {
            op: 2,
            reason: BlockReason::Precedence { after: 1 },
        }));
        assert_eq!(e.blocking_edges(), vec![(1, 2)]);
        // Transitive reduction drops the implied (0, 2) edge.
        assert_eq!(e.edges, vec![(0, 1), (1, 2)]);
        let text = e.render(&Ops::extract(&h));
        assert!(text.contains("op 1 \u{227a} op 2"), "{text}");
    }

    #[test]
    fn pending_ops_are_explained_in_strict_mode() {
        // The pending write's effect is observed, so strict mode fails;
        // the pending op must be called out as dropped.
        let mut h = H::new();
        h.invoke(0, RegOp::Write(7));
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(7));
        let out = check_linearizable(&RegisterSpec, &h, &cfg());
        let CheckOutcome::Violation(Violation::NotLinearizable { explanation, .. }) = out else {
            panic!("expected NotLinearizable, got {out:?}");
        };
        let e = *explanation.expect("explanation");
        assert!(e
            .blocked
            .iter()
            .any(|b| b.op == 0 && b.reason == BlockReason::Pending));
    }

    #[test]
    fn traced_check_records_search_counters() {
        use apram_model::SpanRecorder;
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(0));
        let mut spans = SpanRecorder::new("test");
        let out = check_linearizable_traced(&RegisterSpec, &h, &cfg(), &mut spans);
        let CheckOutcome::Violation(Violation::NotLinearizable { explored, .. }) = out else {
            panic!("{out:?}");
        };
        let tree = spans.finish();
        let check = &tree.children[0];
        assert_eq!(check.name, "check");
        assert_eq!(check.counter("nodes"), Some(explored));
        assert!(check.counter("backtracks").unwrap_or(0) >= 1);
        assert!(check.counter("memo_hits").is_some());

        // The det-traced variant reports through the same span shape.
        let mut spans = SpanRecorder::new("test");
        let out = check_linearizable_det_traced(&RegisterSpec, &h, &cfg(), &mut spans);
        assert!(!out.is_ok());
        let tree = spans.finish();
        assert_eq!(tree.children[0].name, "check");
        assert!(tree.children[0].counter("nodes").is_some());
    }

    #[test]
    fn witness_respects_precedence() {
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(0, RegOp::Write(2));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(2));
        match check_linearizable(&RegisterSpec, &h, &cfg()) {
            CheckOutcome::Linearizable(w) => {
                assert_eq!(w, vec![0, 1, 2]);
                assert!(verify_witness(&RegisterSpec, &h, &w));
            }
            other => panic!("{other:?}"),
        }
    }
}
