//! Parallel linearizability checking of history batches.
//!
//! The checks of distinct histories are embarrassingly parallel (each
//! search owns its memo table and spec state), so a batch collected by
//! an exploration fans out across scoped worker threads pulling from an
//! atomic cursor. Results come back **in input order**, independent of
//! thread count or timing — `check_histories_parallel(spec, hs, cfg, t)`
//! equals `hs.iter().map(|h| check_linearizable(spec, h, cfg))` for
//! every `t`.

use crate::check::{check_linearizable, CheckOutcome, CheckerConfig};
use crate::event::History;
use crate::spec::NondetSpec;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Check every history in `histories` against `spec` across `threads`
/// worker threads (0 = all available parallelism), returning one
/// [`CheckOutcome`] per history in input order.
///
/// Deterministic specs participate through the blanket
/// [`NondetSpec`] impl, exactly as with [`check_linearizable`].
pub fn check_histories_parallel<Sp>(
    spec: &Sp,
    histories: &[History<Sp::Op, Sp::Resp>],
    cfg: &CheckerConfig,
    threads: usize,
) -> Vec<CheckOutcome>
where
    Sp: NondetSpec + Sync,
    Sp::State: Hash + Eq,
    Sp::Op: Send + Sync,
    Sp::Resp: Send + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(histories.len().max(1));
    if threads <= 1 {
        return histories
            .iter()
            .map(|h| check_linearizable(spec, h, cfg))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CheckOutcome>>> =
        histories.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(h) = histories.get(i) else {
                    break;
                };
                *slots[i].lock().unwrap() = Some(check_linearizable(spec, h, cfg));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every history slot checked")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::History;
    use crate::spec::{RegOp, RegResp, RegisterSpec};

    /// A linearizable register history: W(v) then a read seeing v.
    fn good(v: u64) -> History<RegOp, RegResp> {
        let mut h = History::new();
        h.invoke(0, RegOp::Write(v));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(v));
        h
    }

    /// Not linearizable: the read completes before any write yet sees 9.
    fn bad() -> History<RegOp, RegResp> {
        let mut h = History::new();
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(9));
        h.invoke(0, RegOp::Write(9));
        h.respond(0, RegResp::Ack);
        h
    }

    #[test]
    fn matches_sequential_in_input_order() {
        let spec = RegisterSpec;
        let cfg = CheckerConfig::default();
        let histories: Vec<_> = (0..20)
            .map(|i| if i % 7 == 3 { bad() } else { good(i) })
            .collect();
        let sequential: Vec<_> = histories
            .iter()
            .map(|h| check_linearizable(&spec, h, &cfg))
            .collect();
        for threads in [0, 1, 2, 4, 32] {
            let parallel = check_histories_parallel(&spec, &histories, &cfg, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        assert!(!sequential[3].is_ok());
        assert!(sequential[0].is_ok());
    }

    #[test]
    fn empty_batch_is_fine() {
        let spec = RegisterSpec;
        let out = check_histories_parallel(&spec, &[], &CheckerConfig::default(), 4);
        assert!(out.is_empty());
    }
}
