//! Reconstructing checkable histories from flight-recorder op spans.
//!
//! The native backend's flight recorder ([`apram_model::flight`])
//! timestamps each sampled operation's begin and end; pairing them
//! yields [`OpSpan`]s. This module turns a batch of spans back into a
//! [`History`] the checker understands — the bridge between drain (c)
//! of the flight-recorder design and the linearizability pipeline,
//! shared by the E14 spot-checks and `apram-serve`'s offline audit.

use crate::event::{Event, History};
use apram_model::OpSpan;

/// Rebuild a checkable [`History`] from reconstructed op spans.
///
/// Per process, spans arrive in program order with monotone stamps;
/// timestamps are first made *strictly* increasing within each process
/// (bumping a tied stamp to predecessor + 1 only ever widens overlap —
/// conservative), then all events merge by global time with invokes
/// ordered before responds on cross-process ties, so a tie becomes
/// overlap rather than a fabricated precedence.
///
/// Reconstruction is sound because begin stamps are taken before the
/// op's first shared access and end stamps after its last: the measured
/// interval *contains* the true one, so any precedence the
/// reconstruction asserts (`end(A) < begin(B)`) also holds between the
/// true intervals — the check can produce false alarms never, missed
/// overlaps at worst.
pub fn history_from_spans<O, R>(
    spans: &[OpSpan],
    mk_op: impl Fn(&OpSpan) -> O,
    mk_resp: impl Fn(&OpSpan) -> R,
) -> History<O, R> {
    let n = spans.iter().map(|s| s.proc + 1).max().unwrap_or(0);
    // (t, is_invoke, span index), per process, in program order.
    let mut per: Vec<Vec<(u64, bool, usize)>> = vec![Vec::new(); n];
    for (i, s) in spans.iter().enumerate() {
        per[s.proc].push((s.begin_ns, true, i));
        per[s.proc].push((s.end_ns, false, i));
    }
    for evs in &mut per {
        let mut last: Option<u64> = None;
        for e in evs.iter_mut() {
            if let Some(l) = last {
                if e.0 <= l {
                    e.0 = l + 1;
                }
            }
            last = Some(e.0);
        }
    }
    let mut all: Vec<(u64, u8, usize)> = per
        .into_iter()
        .flatten()
        .map(|(t, inv, i)| (t, if inv { 0 } else { 1 }, i))
        .collect();
    all.sort_by_key(|&(t, rank, _)| (t, rank));
    History::from_events(
        all.into_iter()
            .map(|(_, rank, i)| {
                let s = &spans[i];
                if rank == 0 {
                    Event::Invoke {
                        proc: s.proc,
                        op: mk_op(s),
                    }
                } else {
                    Event::Respond {
                        proc: s.proc,
                        resp: mk_resp(s),
                    }
                }
            })
            .collect(),
    )
}
