//! Sequential consistency, and why the paper insists on linearizability.
//!
//! Section 3.2: "linearizability differs from related correctness
//! conditions such as sequential consistency \[34\] or strict
//! serializability \[42\] because it is a *local* property: a set of
//! objects is linearizable if and only if each individual object is
//! linearizable."
//!
//! This module makes the comparison executable:
//!
//! * [`check_sequentially_consistent`] — the same DFS as the
//!   linearizability checker but with the real-time constraint dropped:
//!   a legal total order need only respect each process's *program
//!   order*.
//! * Tests reproduce the classic facts: every linearizable history is
//!   sequentially consistent; SC additionally admits "stale" histories
//!   linearizability rejects; and — the paper's point — SC is **not
//!   local**: two registers, each individually SC, can compose into a
//!   non-SC history, whereas linearizability verdicts always compose.

use crate::check::{CheckOutcome, CheckerConfig, Violation, MAX_OPS};
use crate::event::History;
use crate::ops::{OpRecord, Ops};
use crate::spec::NondetSpec;
use std::collections::HashSet;
use std::hash::Hash;

struct ScSearch<'a, Sp: NondetSpec> {
    spec: &'a Sp,
    records: &'a [OpRecord<Sp::Op, Sp::Resp>],
    cfg: &'a CheckerConfig,
    memo: HashSet<(u128, Sp::State)>,
    explored: u64,
    witness: Vec<usize>,
}

enum ScResult {
    Found,
    Exhausted,
    OverBudget,
}

impl<Sp> ScSearch<'_, Sp>
where
    Sp: NondetSpec,
    Sp::State: Hash + Eq + Clone,
{
    fn dfs(&mut self, remaining: u128, state: &Sp::State) -> ScResult {
        self.explored += 1;
        if self.explored > self.cfg.node_budget {
            return ScResult::OverBudget;
        }
        let mut any_completed_left = false;
        for (i, r) in self.records.iter().enumerate() {
            if remaining & (1u128 << i) != 0 && !r.is_pending() {
                any_completed_left = true;
            }
        }
        if !any_completed_left {
            return ScResult::Found;
        }
        if self.memo.contains(&(remaining, state.clone())) {
            return ScResult::Exhausted;
        }
        'cand: for i in 0..self.records.len() {
            if remaining & (1u128 << i) == 0 {
                continue;
            }
            let r = &self.records[i];
            let Some(resp) = &r.resp else { continue };
            // Program-order constraint only: every earlier op of the
            // same process must already be linearized.
            for (j, rj) in self.records.iter().enumerate() {
                if j != i
                    && remaining & (1u128 << j) != 0
                    && rj.proc == r.proc
                    && rj.invoke_at < r.invoke_at
                    && !rj.is_pending()
                {
                    continue 'cand;
                }
            }
            if let Some(next) = self.spec.step(state, r.proc, &r.op, resp) {
                self.witness.push(i);
                match self.dfs(remaining & !(1u128 << i), &next) {
                    ScResult::Found => return ScResult::Found,
                    ScResult::OverBudget => return ScResult::OverBudget,
                    ScResult::Exhausted => {
                        self.witness.pop();
                    }
                }
            }
        }
        self.memo.insert((remaining, state.clone()));
        ScResult::Exhausted
    }
}

/// Check sequential consistency: is there a legal total order of the
/// completed operations that respects every process's program order
/// (real time is ignored)? Pending operations are dropped.
pub fn check_sequentially_consistent<Sp>(
    spec: &Sp,
    h: &History<Sp::Op, Sp::Resp>,
    cfg: &CheckerConfig,
) -> CheckOutcome
where
    Sp: NondetSpec,
    Sp::State: Hash + Eq + Clone,
{
    if !h.well_formed() {
        return CheckOutcome::Violation(Violation::Malformed);
    }
    let ops = Ops::extract(h);
    if ops.len() > MAX_OPS {
        return CheckOutcome::Violation(Violation::TooLarge);
    }
    let mut search = ScSearch {
        spec,
        records: ops.records(),
        cfg,
        memo: HashSet::new(),
        explored: 0,
        witness: Vec::new(),
    };
    let full: u128 = if ops.len() == MAX_OPS {
        u128::MAX
    } else {
        (1u128 << ops.len()) - 1
    };
    let init = spec.initial();
    match search.dfs(full, &init) {
        ScResult::Found => CheckOutcome::Linearizable(search.witness),
        ScResult::OverBudget => CheckOutcome::BudgetExhausted,
        ScResult::Exhausted => CheckOutcome::Violation(Violation::NotLinearizable {
            explored: search.explored,
            // Real time plays no role in SC, so the precedence-centric
            // explanation machinery does not apply here.
            explanation: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_linearizable;
    use crate::spec::{DetSpec, RegOp, RegResp, RegisterSpec};
    use crate::ProcId;
    use proptest::prelude::*;

    type H = History<RegOp, RegResp>;

    fn cfg() -> CheckerConfig {
        CheckerConfig::default()
    }

    /// SC admits stale reads that linearizability rejects.
    #[test]
    fn sc_accepts_stale_reads() {
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(1, RegOp::Read);
        h.respond(1, RegResp::Value(0)); // stale: after the write completed
        assert!(!check_linearizable(&RegisterSpec, &h, &cfg()).is_ok());
        assert!(check_sequentially_consistent(&RegisterSpec, &h, &cfg()).is_ok());
    }

    /// Program order still binds: a process cannot contradict itself.
    #[test]
    fn sc_rejects_program_order_violations() {
        let mut h = H::new();
        h.invoke(0, RegOp::Write(1));
        h.respond(0, RegResp::Ack);
        h.invoke(0, RegOp::Read);
        h.respond(0, RegResp::Value(0)); // own write must be visible
        assert!(!check_sequentially_consistent(&RegisterSpec, &h, &cfg()).is_ok());
    }

    /// A two-register composed specification for the locality tests:
    /// ops carry the register index.
    #[derive(Clone, Copy, Debug, Default)]
    struct TwoRegs;

    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    enum Op2 {
        Write(usize, u64),
        Read(usize),
    }

    impl DetSpec for TwoRegs {
        type State = [u64; 2];
        type Op = Op2;
        type Resp = RegResp;

        fn initial(&self) -> [u64; 2] {
            [0, 0]
        }

        fn apply(&self, s: &mut [u64; 2], _p: ProcId, op: &Op2) -> RegResp {
            match op {
                Op2::Write(r, v) => {
                    s[*r] = *v;
                    RegResp::Ack
                }
                Op2::Read(r) => RegResp::Value(s[*r]),
            }
        }
    }

    fn project(h: &History<Op2, RegResp>, reg: usize) -> H {
        // Project onto one register, mapping ops to the single-register
        // spec's ops. (Well-formed because each op is complete here.)
        let mut out = H::new();
        let ops = Ops::extract(h);
        for r in ops.records() {
            let keep = match r.op {
                Op2::Write(q, _) | Op2::Read(q) => q == reg,
            };
            if keep {
                let op = match r.op {
                    Op2::Write(_, v) => RegOp::Write(v),
                    Op2::Read(_) => RegOp::Read,
                };
                out.invoke(r.proc, op);
                out.respond(r.proc, r.resp.clone().unwrap());
            }
        }
        out
    }

    /// The paper's locality contrast, on the classic Dekker-style
    /// history: each register's projection is SC, yet the composition is
    /// not — while the linearizability verdicts compose exactly
    /// (projection x is already non-linearizable, matching the
    /// non-linearizable whole).
    #[test]
    fn sc_is_not_local_linearizability_is() {
        // Sequential real-time order of completed ops:
        //   P0: W(x,1)   P0: R(y)→0   P1: W(y,1)   P1: R(x)→0
        let mut h: History<Op2, RegResp> = History::new();
        h.invoke(0, Op2::Write(0, 1));
        h.respond(0, RegResp::Ack);
        h.invoke(1, Op2::Write(1, 1));
        h.respond(1, RegResp::Ack);
        h.invoke(0, Op2::Read(1));
        h.respond(0, RegResp::Value(0)); // P0 misses P1's write to y
        h.invoke(1, Op2::Read(0));
        h.respond(1, RegResp::Value(0)); // P1 misses P0's write to x
                                         // Composition: not SC (the cycle W(x,1)<R(y)<W(y,1)<R(x)<W(x,1)).
        assert!(!check_sequentially_consistent(&TwoRegs, &h, &cfg()).is_ok());
        // But each projection alone is SC:
        let hx = project(&h, 0);
        let hy = project(&h, 1);
        assert!(check_sequentially_consistent(&RegisterSpec, &hx, &cfg()).is_ok());
        assert!(check_sequentially_consistent(&RegisterSpec, &hy, &cfg()).is_ok());
        // Linearizability is local: the projections are already
        // rejected, agreeing with the rejected composition.
        assert!(!check_linearizable(&RegisterSpec, &hx, &cfg()).is_ok());
        assert!(!check_linearizable(&RegisterSpec, &hy, &cfg()).is_ok());
        assert!(!check_linearizable(&TwoRegs, &h, &cfg()).is_ok());
    }

    /// Strategy for small random register histories (reused shape from
    /// the brute-force tests).
    fn small_history() -> impl Strategy<Value = H> {
        proptest::collection::vec((0usize..3, 0u8..2, 0u64..3, any::<bool>()), 0..6).prop_map(
            |steps| {
                let mut h = H::new();
                let mut open: Vec<(usize, RegResp)> = Vec::new();
                for (proc, kind, val, close_now) in steps {
                    if let Some(pos) = open.iter().position(|(p, _)| *p == proc) {
                        let (p, resp) = open.remove(pos);
                        h.respond(p, resp);
                    }
                    let (op, resp) = if kind == 0 {
                        (RegOp::Write(val), RegResp::Ack)
                    } else {
                        (RegOp::Read, RegResp::Value(val))
                    };
                    h.invoke(proc, op);
                    if close_now {
                        h.respond(proc, resp);
                    } else {
                        open.push((proc, resp));
                    }
                }
                for (p, resp) in open {
                    h.respond(p, resp);
                }
                h
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Linearizability implies sequential consistency (the SC order
        /// relaxes the linearization's constraints).
        #[test]
        fn linearizable_implies_sc(h in small_history()) {
            prop_assume!(h.well_formed());
            if check_linearizable(&RegisterSpec, &h, &cfg()).is_ok() {
                prop_assert!(
                    check_sequentially_consistent(&RegisterSpec, &h, &cfg()).is_ok(),
                    "linearizable history rejected by SC: {:?}", h
                );
            }
        }
    }
}
