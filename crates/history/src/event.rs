//! Invocation/response events and the history container.
//!
//! "An object is an automaton with input events INVOKE(P, op) ... and
//! output events RESPOND(P, res)" (Section 3.2). A history is the sequence
//! of such events from an execution; positions in the sequence encode the
//! real-time order.

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A process identifier (the paper's `P`); processes are ordered by index,
/// which Definition 14 uses to break ties in the dominance relation.
pub type ProcId = usize;

/// One event of a history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event<O, R> {
    /// `INVOKE(P, op)`.
    Invoke {
        /// The invoking process.
        proc: ProcId,
        /// The operation (including its arguments).
        op: O,
    },
    /// `RESPOND(P, res)`.
    Respond {
        /// The responding process.
        proc: ProcId,
        /// The result value.
        resp: R,
    },
}

impl<O, R> Event<O, R> {
    /// The process an event belongs to.
    pub fn proc(&self) -> ProcId {
        match self {
            Event::Invoke { proc, .. } | Event::Respond { proc, .. } => *proc,
        }
    }

    /// `true` for invocation events.
    pub fn is_invoke(&self) -> bool {
        matches!(self, Event::Invoke { .. })
    }
}

/// A history: a finite sequence of events.
///
/// Invariants are *checked*, not assumed: [`History::well_formed`]
/// verifies that each per-process subhistory `H|P` begins with an
/// invocation and alternates matching invocations and responses.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct History<O, R> {
    events: Vec<Event<O, R>>,
}

impl<O, R> History<O, R> {
    /// The empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Build from a raw event sequence.
    pub fn from_events(events: Vec<Event<O, R>>) -> Self {
        History { events }
    }

    /// Append an invocation event.
    pub fn invoke(&mut self, proc: ProcId, op: O) {
        self.events.push(Event::Invoke { proc, op });
    }

    /// Append a response event.
    pub fn respond(&mut self, proc: ProcId, resp: R) {
        self.events.push(Event::Respond { proc, resp });
    }

    /// The events, in real-time order.
    pub fn events(&self) -> &[Event<O, R>] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One more than the largest process id appearing in the history
    /// (0 when empty): the row count for per-process renderings such as
    /// [`crate::explain::render_timeline`].
    pub fn n_procs(&self) -> usize {
        self.events.iter().map(|e| e.proc() + 1).max().unwrap_or(0)
    }

    /// The projection `H|P`: the subsequence of events of process `p`.
    pub fn project(&self, p: ProcId) -> Vec<&Event<O, R>> {
        self.events.iter().filter(|e| e.proc() == p).collect()
    }

    /// Well-formedness: for every process, `H|P` begins with an invocation
    /// and alternates matching invocations and responses (Section 3.2).
    pub fn well_formed(&self) -> bool {
        let mut pending: std::collections::BTreeMap<ProcId, bool> = Default::default();
        for e in &self.events {
            let has_pending = pending.entry(e.proc()).or_insert(false);
            match e {
                Event::Invoke { .. } => {
                    if *has_pending {
                        return false; // invocation while one is pending
                    }
                    *has_pending = true;
                }
                Event::Respond { .. } => {
                    if !*has_pending {
                        return false; // response with no matching invocation
                    }
                    *has_pending = false;
                }
            }
        }
        true
    }

    /// `complete(H)`: the maximal subsequence consisting only of
    /// invocations and *matching* responses — i.e. `H` with pending
    /// invocations removed.
    pub fn complete(&self) -> History<O, R>
    where
        O: Clone,
        R: Clone,
    {
        // A pending invocation is one with no later response by the same
        // process (well-formed histories have at most one per process).
        let mut responded = vec![false; self.events.len()];
        let mut awaiting: std::collections::BTreeMap<ProcId, usize> = Default::default();
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Invoke { proc, .. } => {
                    awaiting.insert(*proc, i);
                }
                Event::Respond { proc, .. } => {
                    if let Some(j) = awaiting.remove(proc) {
                        responded[j] = true;
                    }
                    responded[i] = true;
                }
            }
        }
        History {
            events: self
                .events
                .iter()
                .zip(&responded)
                .filter(|(e, &r)| r || !e.is_invoke())
                .map(|(e, _)| e.clone())
                .collect(),
        }
    }

    /// `true` when the history is sequential: it begins with an invocation
    /// and alternates matching invocations and responses at the
    /// granularity of complete operations (Section 3.2).
    pub fn is_sequential(&self) -> bool {
        let mut current: Option<ProcId> = None;
        for e in &self.events {
            match (e, current) {
                (Event::Invoke { proc, .. }, None) => current = Some(*proc),
                (Event::Respond { proc, .. }, Some(p)) if *proc == p => current = None,
                _ => return false,
            }
        }
        current.is_none()
    }
}

impl<O: fmt::Debug, R: fmt::Debug> fmt::Debug for History<O, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "History[")?;
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Invoke { proc, op } => writeln!(f, "  {i:4}  P{proc} invoke  {op:?}")?,
                Event::Respond { proc, resp } => writeln!(f, "  {i:4}  P{proc} respond {resp:?}")?,
            }
        }
        write!(f, "]")
    }
}

/// A thread-safe history recorder for native multi-threaded runs.
///
/// Each wrapper method appends its event atomically, so the recorded
/// sequence is a legal real-time order of the actual execution: an
/// operation's invocation is recorded before its body runs and its
/// response after the body returns, hence if operation `a` really finished
/// before `b` began, `a`'s response precedes `b`'s invocation in the
/// record.
#[derive(Clone, Default)]
pub struct Recorder<O, R> {
    inner: Arc<Mutex<History<O, R>>>,
}

impl<O: Clone, R: Clone> Recorder<O, R> {
    /// A fresh recorder with an empty history.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(History::new())),
        }
    }

    /// Record `INVOKE(p, op)`.
    pub fn invoke(&self, proc: ProcId, op: O) {
        self.inner.lock().invoke(proc, op);
    }

    /// Record `RESPOND(p, resp)`.
    pub fn respond(&self, proc: ProcId, resp: R) {
        self.inner.lock().respond(proc, resp);
    }

    /// Run `body` bracketed by invoke/respond events.
    pub fn record<F: FnOnce() -> R>(&self, proc: ProcId, op: O, body: F) -> R {
        self.invoke(proc, op);
        let resp = body();
        self.respond(proc, resp.clone());
        resp
    }

    /// Extract the history recorded so far.
    pub fn snapshot(&self) -> History<O, R> {
        self.inner.lock().clone()
    }

    /// Consume the recorder, returning the history (panics if other clones
    /// are still alive).
    pub fn into_history(self) -> History<O, R> {
        Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("Recorder still shared"))
            .into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = History<&'static str, u32>;

    #[test]
    fn well_formed_accepts_interleaving() {
        let mut h = H::new();
        h.invoke(0, "a");
        h.invoke(1, "b");
        h.respond(1, 1);
        h.respond(0, 0);
        assert!(h.well_formed());
        assert!(!h.is_sequential());
    }

    #[test]
    fn well_formed_rejects_double_invoke() {
        let mut h = H::new();
        h.invoke(0, "a");
        h.invoke(0, "b");
        assert!(!h.well_formed());
    }

    #[test]
    fn well_formed_rejects_orphan_response() {
        let mut h = H::new();
        h.respond(0, 3);
        assert!(!h.well_formed());
    }

    #[test]
    fn complete_drops_pending() {
        let mut h = H::new();
        h.invoke(0, "a");
        h.respond(0, 0);
        h.invoke(1, "b"); // pending
        let c = h.complete();
        assert_eq!(c.len(), 2);
        assert!(c.well_formed());
        assert!(c.is_sequential());
    }

    #[test]
    fn complete_keeps_matched_pairs_in_order() {
        let mut h = H::new();
        h.invoke(0, "a");
        h.invoke(1, "b");
        h.respond(0, 0);
        h.invoke(2, "c"); // pending
        h.respond(1, 1);
        let c = h.complete();
        assert_eq!(c.len(), 4);
        assert_eq!(c.project(2).len(), 0);
    }

    #[test]
    fn sequential_detection() {
        let mut h = H::new();
        h.invoke(0, "a");
        h.respond(0, 0);
        h.invoke(1, "b");
        h.respond(1, 1);
        assert!(h.is_sequential());
    }

    #[test]
    fn projection_filters_by_process() {
        let mut h = H::new();
        h.invoke(0, "a");
        h.invoke(1, "b");
        h.respond(0, 0);
        assert_eq!(h.project(0).len(), 2);
        assert_eq!(h.project(1).len(), 1);
        assert_eq!(h.project(7).len(), 0);
    }

    #[test]
    fn recorder_round_trip() {
        let rec: Recorder<&'static str, u32> = Recorder::new();
        let r = rec.record(0, "inc", || 7);
        assert_eq!(r, 7);
        rec.invoke(1, "get");
        rec.respond(1, 7);
        let h = rec.into_history();
        assert!(h.well_formed());
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn recorder_is_threadsafe() {
        let rec: Recorder<usize, usize> = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        rec.record(p, i, || i);
                    }
                });
            }
        });
        let h = rec.snapshot();
        assert!(h.well_formed());
        assert_eq!(h.len(), 4 * 50 * 2);
    }
}
