//! Histories, sequential specifications, and a linearizability checker.
//!
//! Section 3.2 of the paper defines the correctness condition every object
//! in this workspace is held to: **linearizability** (Herlihy & Wing). A
//! history is a sequence of invocation and response events; it is
//! linearizable when it can be extended (completing some pending
//! invocations) and reordered into a legal sequential history that
//! respects the real-time precedence order `≺_H`.
//!
//! This crate supplies:
//!
//! * [`event`] — invocation/response events, the [`History`] container,
//!   well-formedness, `complete(H)`, and a thread-safe [`Recorder`] for
//!   capturing histories from native multi-threaded runs.
//! * [`ops`] — extraction of operation records and the real-time
//!   precedence relation `≺_H`.
//! * [`spec`] — the [`DetSpec`] trait for the paper's *total,
//!   deterministic* sequential specifications (Section 3.2) and the more
//!   general [`NondetSpec`] relation used for specifications like
//!   approximate agreement whose responses are constrained rather than
//!   determined (Figure 1).
//! * [`check`] — a Wing–Gong style linearizability checker (DFS over
//!   minimal-operation choices, with memoization when states are
//!   hashable), returning a witness linearization or a violation.
//! * [`explain`] — structured failure explanations: the longest
//!   linearizable prefix, why each remaining operation is blocked (with
//!   the real-time precedence edge when that is the cause), and an
//!   operation-interval timeline renderer.
//! * [`brute`] — a brute-force reference checker used to property-test
//!   the real one.
//! * [`sc`] — a sequential-consistency checker, demonstrating the
//!   paper's §3.2 point that linearizability is a *local* property while
//!   SC is not.
//! * [`spans`] — reconstruction of checkable histories from the native
//!   flight recorder's op spans (shared by the E14 spot-checks and
//!   `apram-serve`'s offline audit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod check;
pub mod event;
pub mod explain;
pub mod ops;
pub mod parallel;
pub mod sc;
pub mod spans;
pub mod spec;

pub use check::{
    check_linearizable, check_linearizable_det, check_linearizable_det_traced,
    check_linearizable_traced, verify_witness, CheckOutcome, CheckerConfig, Violation,
};
pub use event::{Event, History, ProcId, Recorder};
pub use explain::{render_timeline, BlockReason, BlockedOp, FailureExplanation};
pub use ops::{OpRecord, Ops};
pub use parallel::check_histories_parallel;
pub use sc::check_sequentially_consistent;
pub use spans::history_from_spans;
pub use spec::{DetSpec, NondetSpec};
