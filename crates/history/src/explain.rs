//! Structured explanations for linearizability failures.
//!
//! When the checker's exhaustive search concludes that no legal
//! linearization exists, a bare "not linearizable" is forensically
//! useless: the interesting question is *which* operations could not be
//! ordered, and which real-time precedence constraint blocked them. A
//! [`FailureExplanation`] answers that with the longest linearizable
//! prefix the search found (the *frontier*), a classified reason per
//! still-unordered operation, and the transitively reduced real-time
//! precedence edges of the whole history. Renderers turn it into an
//! operation-interval timeline (the history-side companion of
//! `Trace::render_ascii`) and a JSON document for `--forensics` bundles.

use crate::ops::Ops;
use apram_model::Json;
use std::fmt::Debug;

/// Why a specific operation could not be linearized next, judged at the
/// frontier state (after replaying the longest legal prefix).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// A real-time precedence edge blocks it: operation `after` (still
    /// unlinearized, completed) responded before this operation's
    /// invocation, so `after` must be linearized first.
    Precedence {
        /// The operation that must come first.
        after: usize,
    },
    /// The sequential spec rejects the operation's observed response
    /// from the frontier state.
    SpecRejected,
    /// Linearizing the operation here is legal, but the search proved
    /// every continuation fails.
    DeadEnd,
    /// The operation is pending and the checker ran in strict mode, so
    /// it was dropped rather than completed.
    Pending,
}

/// One operation the search could not linearize past the frontier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedOp {
    /// Index into [`Ops::records`].
    pub op: usize,
    /// Why it is stuck.
    pub reason: BlockReason,
}

/// A structured account of why a history is not linearizable.
///
/// Operation indices throughout refer to [`Ops::records`] of the checked
/// history (invocation order).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureExplanation {
    /// The longest legal linearization prefix the search found, in
    /// linearized order.
    pub frontier: Vec<usize>,
    /// Every operation not in the frontier, with the reason it could not
    /// extend it.
    pub blocked: Vec<BlockedOp>,
    /// The real-time precedence relation `≺_H` over all operations,
    /// transitively reduced (edges implied by two others are omitted).
    pub edges: Vec<(usize, usize)>,
}

impl FailureExplanation {
    /// The precedence edges directly blocking a frontier extension: one
    /// `(after, op)` pair per [`BlockReason::Precedence`] entry.
    pub fn blocking_edges(&self) -> Vec<(usize, usize)> {
        self.blocked
            .iter()
            .filter_map(|b| match b.reason {
                BlockReason::Precedence { after } => Some((after, b.op)),
                _ => None,
            })
            .collect()
    }

    /// Serialise to JSON:
    /// `{"frontier":[…],"blocked":[{"op":…,"reason":…,…}],"edges":[[a,b],…]}`.
    pub fn to_json(&self) -> Json {
        let blocked = self
            .blocked
            .iter()
            .map(|b| {
                let mut pairs = vec![("op".to_string(), Json::UInt(b.op as u64))];
                let reason = match b.reason {
                    BlockReason::Precedence { after } => {
                        pairs.push(("after".into(), Json::UInt(after as u64)));
                        "precedence"
                    }
                    BlockReason::SpecRejected => "spec_rejected",
                    BlockReason::DeadEnd => "dead_end",
                    BlockReason::Pending => "pending",
                };
                pairs.push(("reason".into(), Json::Str(reason.into())));
                Json::Obj(pairs)
            })
            .collect();
        Json::obj([
            (
                "frontier",
                Json::Arr(
                    self.frontier
                        .iter()
                        .map(|&i| Json::UInt(i as u64))
                        .collect(),
                ),
            ),
            ("blocked", Json::Arr(blocked)),
            (
                "edges",
                Json::Arr(
                    self.edges
                        .iter()
                        .map(|&(a, b)| Json::Arr(vec![Json::UInt(a as u64), Json::UInt(b as u64)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Render a human-readable account: frontier, blocked operations with
    /// reasons, reduced precedence edges, and the interval timeline.
    pub fn render<O: Clone + Debug, R: Clone + Debug>(&self, ops: &Ops<O, R>) -> String {
        let recs = ops.records();
        let mut out = format!(
            "not linearizable: longest legal prefix orders {} of {} operations\n",
            self.frontier.len(),
            recs.len()
        );
        if !self.frontier.is_empty() {
            out.push_str("frontier (linearized so far):\n");
            for &i in &self.frontier {
                let r = &recs[i];
                out.push_str(&format!(
                    "  op {i}: P{} {:?} -> {:?}\n",
                    r.proc, r.op, r.resp
                ));
            }
        }
        out.push_str("blocked:\n");
        for b in &self.blocked {
            let r = &recs[b.op];
            let why = match b.reason {
                BlockReason::Precedence { after } => format!(
                    "real-time edge op {after} \u{227a} op {}: op {after} responded before it was invoked and must linearize first",
                    b.op
                ),
                BlockReason::SpecRejected => {
                    "spec rejects its response from the frontier state".into()
                }
                BlockReason::DeadEnd => "legal here, but every continuation fails".into(),
                BlockReason::Pending => "pending (dropped in strict mode)".into(),
            };
            out.push_str(&format!("  op {}: P{} {:?} — {why}\n", b.op, r.proc, r.op));
        }
        if !self.edges.is_empty() {
            out.push_str("real-time precedence (transitively reduced):\n");
            for &(a, b) in &self.edges {
                out.push_str(&format!("  op {a} \u{227a} op {b}\n"));
            }
        }
        out.push_str("timeline:\n");
        for line in render_timeline(ops).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Render operation intervals as an ASCII timeline: one row per process,
/// one column per history event index, `[`/`]` brackets at each
/// operation's invocation and response, `=` in between (pending
/// operations stay open to the right edge). The operation's index is
/// printed just inside its opening bracket when it fits. A legend line
/// per operation follows the rows.
///
/// This is the history-side companion of `Trace::render_ascii`: the trace
/// shows *shared-memory steps* per process, this shows *operation
/// intervals* per process, on comparable axes.
pub fn render_timeline<O: Clone + Debug, R: Clone + Debug>(ops: &Ops<O, R>) -> String {
    let recs = ops.records();
    let n_procs = recs.iter().map(|r| r.proc + 1).max().unwrap_or(0);
    // One column per event index; pending ops get two trailing cells.
    let width = recs
        .iter()
        .map(|r| {
            if r.is_pending() {
                r.invoke_at + 3
            } else {
                r.respond_at + 1
            }
        })
        .max()
        .unwrap_or(0);
    let mut rows = vec![vec![' '; width]; n_procs];
    for (i, r) in recs.iter().enumerate() {
        let row = &mut rows[r.proc];
        let end = if r.is_pending() {
            width
        } else {
            r.respond_at + 1
        };
        for cell in row.iter_mut().take(end).skip(r.invoke_at) {
            *cell = '=';
        }
        row[r.invoke_at] = '[';
        if !r.is_pending() {
            row[r.respond_at] = ']';
        }
        let close = if r.is_pending() { width } else { r.respond_at };
        for (k, d) in i.to_string().chars().enumerate() {
            let pos = r.invoke_at + 1 + k;
            if pos < close {
                row[pos] = d;
            }
        }
    }
    let mut out = String::new();
    for (p, row) in rows.iter().enumerate() {
        let body: String = row.iter().collect();
        out.push_str(&format!("P{p} |{}\n", body.trim_end()));
    }
    for (i, r) in recs.iter().enumerate() {
        let span = if r.is_pending() {
            format!("[{}..", r.invoke_at)
        } else {
            format!("[{}..{}]", r.invoke_at, r.respond_at)
        };
        let resp = match &r.resp {
            Some(x) => format!("{x:?}"),
            None => "pending".into(),
        };
        out.push_str(&format!(
            "op {i}: P{} {:?} -> {resp} {span}\n",
            r.proc, r.op
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::History;

    #[test]
    fn timeline_draws_intervals_and_legend() {
        // P0: |--a--|        |--c--|
        // P1:     |------b------|
        let mut h: History<&str, u32> = History::new();
        h.invoke(0, "a"); // event 0, op 0
        h.invoke(1, "b"); // event 1, op 1
        h.respond(0, 10); // event 2
        h.invoke(0, "c"); // event 3, op 2
        h.respond(1, 11); // event 4
        h.respond(0, 12); // event 5
        let ops = Ops::extract(&h);
        let art = render_timeline(&ops);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], "P0 |[0][2]");
        assert_eq!(lines[1], "P1 | [1=]");
        assert!(lines[2].contains("op 0: P0 \"a\" -> 10 [0..2]"));
        assert!(lines[4].contains("op 2: P0 \"c\" -> 12 [3..5]"));
    }

    #[test]
    fn timeline_extends_pending_ops() {
        let mut h: History<&str, u32> = History::new();
        h.invoke(0, "a"); // pending forever
        h.invoke(1, "b");
        h.respond(1, 1);
        let ops = Ops::extract(&h);
        let art = render_timeline(&ops);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[0], "P0 |[0=");
        assert_eq!(lines[1], "P1 | []");
        assert!(art.contains("op 0: P0 \"a\" -> pending [0.."));
    }

    #[test]
    fn json_shape_and_blocking_edges() {
        let e = FailureExplanation {
            frontier: vec![1],
            blocked: vec![
                BlockedOp {
                    op: 0,
                    reason: BlockReason::SpecRejected,
                },
                BlockedOp {
                    op: 2,
                    reason: BlockReason::Precedence { after: 0 },
                },
            ],
            edges: vec![(0, 2)],
        };
        assert_eq!(e.blocking_edges(), vec![(0, 2)]);
        let json = e.to_json();
        let text = json.to_compact();
        assert_eq!(
            text,
            r#"{"frontier":[1],"blocked":[{"op":0,"reason":"spec_rejected"},{"op":2,"after":0,"reason":"precedence"}],"edges":[[0,2]]}"#
        );
        // Round-trips through the parser.
        assert!(apram_model::json::parse(&text).is_ok());
    }

    #[test]
    fn render_names_the_blocking_edge() {
        let mut h: History<&str, u32> = History::new();
        h.invoke(0, "w1"); // op 0
        h.respond(0, 0);
        h.invoke(1, "w2"); // op 1
        h.respond(1, 0);
        let ops = Ops::extract(&h);
        let e = FailureExplanation {
            frontier: vec![],
            blocked: vec![BlockedOp {
                op: 1,
                reason: BlockReason::Precedence { after: 0 },
            }],
            edges: vec![(0, 1)],
        };
        let text = e.render(&ops);
        assert!(text.contains("op 0 \u{227a} op 1"), "{text}");
        assert!(text.contains("must linearize first"), "{text}");
        assert!(text.contains("timeline:"), "{text}");
    }
}
