//! A brute-force reference checker.
//!
//! Enumerates *every* permutation of the completed operations, keeping
//! those that extend the real-time order, and replays each through the
//! spec. Exponentially slower than [`crate::check`], but it shares no code
//! with it, so the two are property-tested against each other on small
//! random histories.

use crate::event::History;
use crate::ops::Ops;
use crate::spec::NondetSpec;

/// `true` iff some precedence-respecting permutation of the completed
/// operations of `h` is legal under `spec`. Pending operations are
/// dropped (strict mode, matching
/// [`crate::check::check_linearizable`]).
pub fn brute_force_linearizable<Sp: NondetSpec>(spec: &Sp, h: &History<Sp::Op, Sp::Resp>) -> bool {
    if !h.well_formed() {
        return false;
    }
    let ops = Ops::extract(h);
    let completed = ops.completed();
    let mut perm = Vec::with_capacity(completed.len());
    let mut used = vec![false; completed.len()];
    permute(spec, &ops, &completed, &mut perm, &mut used)
}

fn permute<Sp: NondetSpec>(
    spec: &Sp,
    ops: &Ops<Sp::Op, Sp::Resp>,
    completed: &[usize],
    perm: &mut Vec<usize>,
    used: &mut [bool],
) -> bool {
    if perm.len() == completed.len() {
        return replay(spec, ops, perm);
    }
    for (k, &i) in completed.iter().enumerate() {
        if used[k] {
            continue;
        }
        // Precedence filter: every op that must precede i is already in.
        let ok = completed
            .iter()
            .enumerate()
            .all(|(k2, &j)| k2 == k || !ops.precedes(j, i) || used[k2]);
        if !ok {
            continue;
        }
        used[k] = true;
        perm.push(i);
        if permute(spec, ops, completed, perm, used) {
            return true;
        }
        perm.pop();
        used[k] = false;
    }
    false
}

fn replay<Sp: NondetSpec>(spec: &Sp, ops: &Ops<Sp::Op, Sp::Resp>, perm: &[usize]) -> bool {
    let mut state = spec.initial();
    for &i in perm {
        let r = &ops.records()[i];
        let resp = r.resp.as_ref().expect("completed op");
        match spec.step(&state, r.proc, &r.op, resp) {
            Some(next) => state = next,
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_linearizable, CheckerConfig};
    use crate::spec::{QueueOp, QueueResp, QueueSpec, RegOp, RegResp, RegisterSpec};
    use proptest::prelude::*;

    #[test]
    fn agrees_on_hand_cases() {
        let mut good: History<RegOp, RegResp> = History::new();
        good.invoke(0, RegOp::Write(1));
        good.invoke(1, RegOp::Read);
        good.respond(1, RegResp::Value(1));
        good.respond(0, RegResp::Ack);
        assert!(brute_force_linearizable(&RegisterSpec, &good));

        let mut bad: History<RegOp, RegResp> = History::new();
        bad.invoke(0, RegOp::Write(1));
        bad.respond(0, RegResp::Ack);
        bad.invoke(1, RegOp::Read);
        bad.respond(1, RegResp::Value(0));
        assert!(!brute_force_linearizable(&RegisterSpec, &bad));
    }

    #[test]
    fn queue_fifo_violation_detected_by_both() {
        // enq(1) completes before enq(2) begins, yet deq returns 2 first.
        let mut h: History<QueueOp, QueueResp> = History::new();
        h.invoke(0, QueueOp::Enq(1));
        h.respond(0, QueueResp::Ack);
        h.invoke(0, QueueOp::Enq(2));
        h.respond(0, QueueResp::Ack);
        h.invoke(1, QueueOp::Deq);
        h.respond(1, QueueResp::Head(Some(2)));
        assert!(!brute_force_linearizable(&QueueSpec, &h));
        assert!(!check_linearizable(&QueueSpec, &h, &CheckerConfig::default()).is_ok());
    }

    /// Generate a small random well-formed register history: a sequence of
    /// (proc, op, resp, overlap) drives an interleaving builder.
    fn small_history() -> impl Strategy<Value = History<RegOp, RegResp>> {
        proptest::collection::vec((0usize..3, 0u8..2, 0u64..3, any::<bool>()), 0..6).prop_map(
            |steps| {
                let mut h = History::new();
                let mut open: Vec<(usize, RegResp)> = Vec::new();
                for (proc, kind, val, close_now) in steps {
                    if open.iter().any(|(p, _)| *p == proc) {
                        // close this proc's pending op first
                        let pos = open.iter().position(|(p, _)| *p == proc).unwrap();
                        let (p, resp) = open.remove(pos);
                        h.respond(p, resp);
                    }
                    let (op, resp) = if kind == 0 {
                        (RegOp::Write(val), RegResp::Ack)
                    } else {
                        (RegOp::Read, RegResp::Value(val))
                    };
                    h.invoke(proc, op);
                    if close_now {
                        h.respond(proc, resp);
                    } else {
                        open.push((proc, resp));
                    }
                }
                for (p, resp) in open {
                    h.respond(p, resp);
                }
                h
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn checker_agrees_with_brute_force(h in small_history()) {
            prop_assume!(h.well_formed());
            let fast = check_linearizable(&RegisterSpec, &h, &CheckerConfig::default());
            let slow = brute_force_linearizable(&RegisterSpec, &h);
            prop_assert_eq!(fast.is_ok(), slow, "history: {:?}", h);
        }
    }
}
