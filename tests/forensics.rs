//! PR acceptance: failure forensics end to end.
//!
//! A seeded non-linearizable run (the naive-collect snapshot) driven
//! through `explore` must produce a shrunk schedule that is strictly
//! shorter than the original, replays bit-identically to the same
//! violation under `Replay::strict`, and whose witness explanation names
//! the blocking real-time precedence edge `update(P1) ≺ update(P2)`.
//!
//! When `APRAM_FORENSICS_DIR` is set, the artifacts under inspection are
//! also written there (the CI failure-artifact hook).

use apram_bench::{e9_factory, E9RecCell, E9_PROCS};
use apram_history::{check_linearizable, CheckOutcome, CheckerConfig, Ops, Violation};
use apram_model::sim::shrink::ShrinkConfig;
use apram_model::sim::strategy::Replay;
use apram_model::sim::{ExploreConfig, SimBuilder};
use apram_snapshot::collect::CollectArray;
use apram_snapshot::snapshot::{SnapOp, SnapResp, SnapshotSpec};
use std::sync::{Arc, Mutex};

/// Dump a forensics artifact when `APRAM_FORENSICS_DIR` is set, so a CI
/// failure of this suite leaves the evidence behind.
fn dump_artifact(name: &str, contents: &str) {
    let Ok(dir) = std::env::var("APRAM_FORENSICS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create APRAM_FORENSICS_DIR");
    std::fs::write(dir.join(name), contents).expect("write forensics artifact");
}

#[test]
fn shrunk_schedule_replays_bit_identically_and_names_the_blocking_edge() {
    let arr = CollectArray::new(E9_PROCS);
    let spec = SnapshotSpec::<u32>::new(E9_PROCS);
    let cell: E9RecCell = Arc::new(Mutex::new(None));

    // Explore until the checker rejects a history; the on-violation hook
    // then minimizes the failing schedule before `explore` returns.
    let visit_cell = Arc::clone(&cell);
    let stats = SimBuilder::new(arr.registers::<u32>())
        .owners(arr.owners())
        .explore(
            &ExploreConfig::new().shrink(ShrinkConfig::default()),
            e9_factory(arr, Arc::clone(&cell)),
            |out| {
                out.assert_no_panics();
                let hist = visit_cell.lock().unwrap().take().unwrap().snapshot();
                check_linearizable(&spec, &hist, &CheckerConfig::default()).is_ok()
            },
        );
    let report = stats
        .violation
        .expect("naive collect must produce a violation");
    dump_artifact("shrunk_schedule.jsonl", &{
        let mut s = report.to_json().to_compact();
        s.push('\n');
        s
    });

    // 1. Strictly shorter than the original failing schedule.
    assert!(
        report.schedule.len() < report.original.len(),
        "shrunk schedule ({} steps) must be strictly shorter than the original ({})",
        report.schedule.len(),
        report.original.len()
    );

    // 2. Strict replay with the schedule length as step budget reproduces
    //    the execution bit-identically — twice, to the same violation.
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut factory = e9_factory(arr, Arc::clone(&cell));
        let out = SimBuilder::new(arr.registers::<u32>())
            .owners(arr.owners())
            .strategy(Replay::strict(report.schedule.clone()))
            .max_steps(report.schedule.len() as u64)
            .run(factory());
        out.assert_no_panics();
        assert_eq!(
            out.trace.schedule(),
            report.schedule,
            "every entry of the shrunk schedule must be serviced"
        );
        let hist = cell.lock().unwrap().take().unwrap().snapshot();
        let verdict = check_linearizable(&spec, &hist, &CheckerConfig::default());
        runs.push((out.trace.clone(), hist, verdict));
    }
    let (trace_b, hist_b, verdict_b) = runs.pop().unwrap();
    let (trace_a, hist_a, verdict_a) = runs.pop().unwrap();
    assert_eq!(trace_a, trace_b, "trace must replay bit-identically");
    assert_eq!(hist_a, hist_b, "history must replay bit-identically");
    assert_eq!(verdict_a, verdict_b, "verdict must be identical");

    // 3. The witness explanation names the blocking real-time precedence
    //    edge: an update by P1 that completed before an update by P2 was
    //    invoked, which is exactly what the naive collect's view denies.
    let CheckOutcome::Violation(Violation::NotLinearizable { explanation, .. }) = verdict_a else {
        panic!("expected NotLinearizable, got {verdict_a:?}");
    };
    let explanation = *explanation.expect("the exhaustive search tracks explanations");
    let ops = Ops::extract(&hist_a);
    dump_artifact("witness.json", &explanation.to_json().to_pretty(2));
    dump_artifact("witness.txt", &explanation.render(&ops));
    assert!(
        explanation.frontier.len() < ops.len(),
        "a violation cannot linearize every operation: {explanation:?}"
    );
    let recs = ops.records();
    let &(a, b) = explanation
        .edges
        .iter()
        .find(|&&(a, b)| recs[a].proc == 1 && recs[b].proc == 2)
        .unwrap_or_else(|| {
            panic!("explanation must name an update(P1) ≺ update(P2) edge: {explanation:?}")
        });
    assert!(matches!(recs[a].op, SnapOp::Update(_)));
    assert!(matches!(recs[b].op, SnapOp::Update(_)));
    assert!(ops.precedes(a, b), "the named edge must be real");
    // The scanner's view misses the P1 update yet includes a P2 value:
    // the anomaly the edge makes impossible to linearize.
    let view = recs
        .iter()
        .find_map(|r| match &r.resp {
            Some(SnapResp::View(v)) => Some(v.clone()),
            _ => None,
        })
        .expect("the scanner completed its snap");
    assert!(view[2].is_some(), "view saw a P2 value: {view:?}");
    // And the rendered form names the edge in human-readable terms.
    let rendered = explanation.render(&ops);
    assert!(
        rendered.contains(&format!("op {a} \u{227a} op {b}")),
        "{rendered}"
    );
}
