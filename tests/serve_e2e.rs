//! End-to-end serving tests: a real TCP server, concurrent tenants,
//! a mid-stream client kill, and the offline linearizability audit.
//!
//! This is the integration surface for the whole serving stack: wire
//! protocol framing, slot leasing, sharded dispatch, flight recording
//! on live shard memories, and span-reconstructed history checking.

use apram_model::FlightMode;
use apram_serve::protocol::{OPC_READ, OPC_UPDATE, ST_OK};
use apram_serve::{
    run_audit, run_load, serve, Client, LoadConfig, ServeConfig, ServerHandle, TableConfig,
};
use std::time::Duration;

fn audited_server(objects: &[&str], shards: usize, slots: usize) -> ServerHandle {
    let table = TableConfig::new(objects, shards, slots).flight(FlightMode::Always, 1 << 12);
    serve(&ServeConfig::local(table)).unwrap()
}

/// Four tenants hammer a sharded counter; one is killed mid-stream
/// (socket dropped, no goodbye) and reconnects. The survivors must all
/// finish their budgets, their latency histograms must be populated,
/// and every per-shard sampled history must linearize.
///
/// Op budgets are sized so each shard's history stays under the
/// checker's 128-op bitmask limit (counter reads leave one span on
/// *every* shard; see `apram_history::check::MAX_OPS`).
#[test]
fn crash_one_tenant_survivors_finish_and_audit_passes() {
    let server = audited_server(&["counter"], 2, 8);
    let mut cfg = LoadConfig::new("counter");
    cfg.tenants = 4;
    cfg.ops_per_tenant = 30;
    cfg.crash_tenant = true;

    let report = run_load(server.addr(), 0, &cfg).unwrap();
    assert!(report.all_completed(&cfg), "{report:?}");
    assert_eq!(report.total_ops(), 4 * 30);
    let crasher = &report.tenants[0];
    assert!(crasher.crashed);
    assert!(crasher.reconnects >= 1, "the crash must have happened");

    // Survivor SLO: every non-crashed tenant recorded its full budget
    // of latencies, and the merged histogram has sane percentiles.
    let survivors = report.survivor_latency();
    assert_eq!(survivors.count, 3 * 30);
    assert!(survivors.p50() <= survivors.p99());
    assert!(survivors.p99() > 0);

    // Offline audit over the per-shard flight logs.
    let logs = server.drain_flight("counter");
    let audit = run_audit("counter", &logs, 0);
    assert_eq!(audit.dropped, 0, "audit is void if the recorder dropped");
    assert!(audit.histories >= 1);
    assert!(audit.spans >= 4 * 30, "every op leaves at least one span");
    assert!(audit.all_linearizable, "{:?}", audit.failures);

    server.shutdown();
}

/// The audit also holds for the keyed map under a zipfian mix, where
/// each key lives on exactly one shard.
#[test]
fn keyed_map_load_audits_linearizable() {
    let server = audited_server(&["lwwmap-direct"], 2, 4);
    let mut cfg = LoadConfig::new("lwwmap-direct");
    cfg.tenants = 4;
    cfg.ops_per_tenant = 40;
    cfg.keys = 16;

    let report = run_load(server.addr(), 0, &cfg).unwrap();
    assert!(report.all_completed(&cfg), "{report:?}");

    let logs = server.drain_flight("lwwmap-direct");
    let audit = run_audit("lwwmap-direct", &logs, 0);
    assert_eq!(audit.dropped, 0);
    assert!(audit.all_linearizable, "{:?}", audit.failures);
    server.shutdown();
}

/// Raw protocol sanity straight through a socket: several objects in
/// one table, interleaved on one connection.
#[test]
fn one_connection_drives_many_objects() {
    let server = audited_server(&["counter", "maxreg", "lwwmap-direct"], 2, 2);
    let mut c = Client::connect(server.addr()).unwrap();

    // counter (index 0): three incs, read sums across shards.
    for _ in 0..3 {
        assert_eq!(c.op(OPC_UPDATE, 0, 0, 0).unwrap().status, ST_OK);
    }
    assert_eq!(c.op(OPC_READ, 0, 0, 0).unwrap().values, vec![3]);

    // maxreg (index 1): empty read is the None sentinel, then a write.
    assert_eq!(c.op(OPC_READ, 1, 0, 0).unwrap().as_opt(), None);
    c.op(OPC_UPDATE, 1, 41, 0).unwrap();
    assert_eq!(c.op(OPC_READ, 1, 0, 0).unwrap().as_opt(), Some(41));

    // lwwmap-direct (index 2): keyed put/get.
    c.op(OPC_UPDATE, 2, 5, 500).unwrap();
    assert_eq!(c.op(OPC_READ, 2, 5, 0).unwrap().as_opt(), Some(500));

    drop(c);
    server.shutdown();
}

/// Shutdown with live connections neither hangs nor panics, and the
/// metrics endpoint works up to the end.
#[test]
fn shutdown_with_live_connections_is_clean() {
    let server = audited_server(&["counter"], 1, 4);
    let mut c = Client::connect(server.addr()).unwrap();
    c.op(OPC_UPDATE, 0, 0, 0).unwrap();

    let metrics = Client::scrape_metrics(server.addr()).unwrap();
    assert!(metrics.contains("serve_requests_total"), "{metrics}");

    // Leave `c` open across shutdown: the worker must notice the flag
    // within its poll interval and exit.
    let start = std::time::Instant::now();
    server.shutdown();
    assert!(start.elapsed() < Duration::from_secs(10));
}
