//! End-to-end linearizability: native multi-threaded histories of every
//! object in the workspace, recorded in real time and verified against
//! their sequential specifications.

use apram_core::{CounterOp, CounterResp, CounterSpec, Universal};
use apram_history::check::{check_linearizable, CheckOutcome, CheckerConfig};
use apram_history::Recorder;
use apram_lattice::MaxU64;
use apram_model::NativeMemory;
use apram_objects::growset::{GrowSetSpec, SetOp, SetResp};
use apram_objects::maxreg::{DirectMaxRegister, MaxRegOp, MaxRegResp, MaxRegSpec};
use apram_objects::DirectCounter;
use apram_snapshot::snapshot::{ScanMaxOp, ScanMaxResp, ScanMaxSpec};
use apram_snapshot::ScanObject;

fn assert_linearizable<S>(spec: &S, hist: &apram_history::History<S::Op, S::Resp>)
where
    S: apram_history::NondetSpec,
    S::State: std::hash::Hash + Eq,
    S::Op: std::fmt::Debug,
    S::Resp: std::fmt::Debug,
{
    match check_linearizable(spec, hist, &CheckerConfig::default()) {
        CheckOutcome::Linearizable(_) => {}
        other => panic!("{other:?}\n{hist:?}"),
    }
}

/// The raw Section 6 lattice object (Write_L / ReadMax) under native
/// threads, against its sequential spec (Theorem 33 end to end).
#[test]
fn scan_max_object_native() {
    for trial in 0..8u64 {
        let n = 3;
        let obj = ScanObject::new(n);
        let mem = NativeMemory::new(n, obj.registers::<MaxU64>()).with_owners(obj.owners());
        let rec: Recorder<ScanMaxOp<MaxU64>, ScanMaxResp<MaxU64>> = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..n {
                let mem = mem.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    let v = MaxU64::new((trial + 1) * 10 + p as u64);
                    rec.invoke(p, ScanMaxOp::WriteL(v));
                    obj.write_l(&mut ctx, v);
                    rec.respond(p, ScanMaxResp::Ack);
                    rec.invoke(p, ScanMaxOp::ReadMax);
                    let m = obj.read_max(&mut ctx);
                    rec.respond(p, ScanMaxResp::Max(m));
                });
            }
        });
        let hist = rec.into_history();
        assert_linearizable(&ScanMaxSpec::<MaxU64>::new(), &hist);
    }
}

/// Universal counter and direct counter running side by side on native
/// threads; both histories must linearize against the counter spec.
#[test]
fn both_counters_native() {
    for trial in 0..4 {
        let n = 3;
        let uni = Universal::new(n, CounterSpec);
        let umem = NativeMemory::new(n, uni.registers()).with_owners(uni.owners());
        let dir = DirectCounter::new(n);
        let dmem = NativeMemory::new(n, dir.registers()).with_owners(dir.owners());
        let urec: Recorder<CounterOp, CounterResp> = Recorder::new();
        let drec: Recorder<CounterOp, CounterResp> = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..n {
                let umem = umem.clone();
                let dmem = dmem.clone();
                let urec = urec.clone();
                let drec = drec.clone();
                let mut uh = uni.handle();
                let mut dh = dir.handle();
                s.spawn(move || {
                    let mut uc = umem.ctx(p);
                    let mut dc = dmem.ctx(p);
                    for k in 0..2 {
                        let amt = (p + k + 1) as i64;
                        urec.invoke(p, CounterOp::Inc(amt));
                        uh.execute(&mut uc, CounterOp::Inc(amt));
                        urec.respond(p, CounterResp::Ack);
                        urec.invoke(p, CounterOp::Read);
                        let r = uh.execute(&mut uc, CounterOp::Read);
                        urec.respond(p, r);

                        drec.invoke(p, CounterOp::Inc(amt));
                        dh.inc(&mut dc, amt as u64);
                        drec.respond(p, CounterResp::Ack);
                        drec.invoke(p, CounterOp::Read);
                        let v = dh.read(&mut dc);
                        drec.respond(p, CounterResp::Value(v));
                    }
                });
            }
        });
        let uhist = urec.into_history();
        let dhist = drec.into_history();
        assert_linearizable(&CounterSpec, &uhist);
        assert_linearizable(&CounterSpec, &dhist);
        let _ = trial;
    }
}

/// The universal clearable set, native threads, overwrite-heavy mix.
#[test]
fn universal_set_native() {
    for trial in 0..4u64 {
        let n = 3;
        let uni = Universal::new(n, GrowSetSpec);
        let mem = NativeMemory::new(n, uni.registers()).with_owners(uni.owners());
        let rec: Recorder<SetOp, SetResp> = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..n {
                let mem = mem.clone();
                let rec = rec.clone();
                let mut h = uni.handle();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    let ops = match p {
                        0 => vec![SetOp::Add(trial), SetOp::Elements],
                        1 => vec![SetOp::Clear, SetOp::Contains(trial)],
                        _ => vec![SetOp::Add(trial + 100), SetOp::Elements],
                    };
                    for op in ops {
                        rec.invoke(p, op.clone());
                        let r = h.execute(&mut ctx, op);
                        rec.respond(p, r);
                    }
                });
            }
        });
        let hist = rec.into_history();
        assert_linearizable(&GrowSetSpec, &hist);
    }
}

/// The direct max-register, larger thread counts, many ops (the checker
/// stays fast because states collapse heavily under memoization).
#[test]
fn max_register_native_heavier() {
    let n = 4;
    let obj = DirectMaxRegister::new(n);
    let mem = NativeMemory::new(n, obj.registers()).with_owners(obj.owners());
    let rec: Recorder<MaxRegOp, MaxRegResp> = Recorder::new();
    std::thread::scope(|s| {
        for p in 0..n {
            let mem = mem.clone();
            let rec = rec.clone();
            let mut h = obj.handle();
            s.spawn(move || {
                let mut ctx = mem.ctx(p);
                for k in 0..3i64 {
                    let v = (p as i64) * 3 + k;
                    rec.invoke(p, MaxRegOp::WriteMax(v));
                    h.write_max(&mut ctx, v);
                    rec.respond(p, MaxRegResp::Ack);
                }
                rec.invoke(p, MaxRegOp::Read);
                let v = h.read(&mut ctx);
                rec.respond(p, MaxRegResp::Value(v));
            });
        }
    });
    let hist = rec.into_history();
    assert_linearizable(&MaxRegSpec, &hist);
}
