//! Cross-backend integration: the same algorithm code runs under the
//! deterministic simulator and under native threads, and the two
//! backends agree wherever determinism makes agreement well-defined.

use apram_lattice::{MaxU64, SetUnion};
use apram_model::sim::strategy::{Replay, SeededRandom};
use apram_model::sim::SimBuilder;
use apram_model::{MemCtx, NativeMemory};
use apram_objects::DirectCounter;
use apram_snapshot::ScanObject;

/// A sequential schedule in the simulator must produce exactly what a
/// sequential native execution produces.
#[test]
fn sequential_schedules_match_native() {
    let n = 3;
    let obj = ScanObject::new(n);

    // Native, strictly sequential.
    let mem = NativeMemory::new(n, obj.registers::<SetUnion<usize>>());
    let mut native = Vec::new();
    for p in 0..n {
        let mut ctx = mem.ctx(p);
        native.push(obj.scan(&mut ctx, SetUnion::singleton(p)));
    }

    // Simulator, schedule "P0 to completion, then P1, then P2".
    let per = (n * n + n + 1) + (n + 2); // literal scan steps
    let schedule: Vec<usize> = (0..n).flat_map(|p| std::iter::repeat_n(p, per)).collect();
    let out = SimBuilder::new(obj.registers::<SetUnion<usize>>())
        .owners(obj.owners())
        .strategy(Replay::strict(schedule))
        .run_symmetric(n, move |ctx| obj.scan(ctx, SetUnion::singleton(ctx.proc())));
    let sim = out.unwrap_results();
    assert_eq!(native, sim);
}

/// Simulator trace replay is deterministic end to end: run a random
/// schedule, capture the trace, replay it, compare everything.
#[test]
fn random_schedule_replays_identically() {
    let n = 4;
    let obj = ScanObject::new(n);
    let sim = SimBuilder::new(obj.registers::<MaxU64>()).owners(obj.owners());
    let body = move |ctx: &mut apram_model::SimCtx<MaxU64>| {
        let a = obj.scan(ctx, MaxU64::new(ctx.proc() as u64 + 10));
        let b = obj.read_max(ctx);
        (a, b)
    };
    let mut sim = sim.strategy(SeededRandom::new(99));
    let first = sim.run_symmetric(n, body);
    first.assert_no_panics();
    let schedule = first.trace.schedule();
    let mut sim = sim.strategy(Replay::strict(schedule.clone()));
    let second = sim.run_symmetric(n, body);
    assert_eq!(first.results, second.results);
    assert_eq!(second.trace.schedule(), schedule);
    assert_eq!(first.memory, second.memory);
    assert_eq!(first.counts, second.counts);
}

/// The direct counter produces the same final total on both backends,
/// and the simulator's step accounting matches the native context's.
#[test]
fn counter_totals_and_step_counts_agree() {
    let n = 3;
    let per = 5u64;
    let cnt = DirectCounter::new(n);

    // Simulator (round-robin).
    let out = SimBuilder::new(cnt.registers())
        .owners(cnt.owners())
        .run_symmetric(n, move |ctx| {
            let mut h = cnt.handle();
            for _ in 0..per {
                h.inc(ctx, 2);
            }
            h.read(ctx)
        });
    out.assert_no_panics();
    let sim_steps: Vec<u64> = out.counts.iter().map(|c| c.total()).collect();
    let sim_total = cnt.audit_total(|r| out.memory[r].clone());
    assert_eq!(sim_total, (n as u64 * per * 2) as i64);

    // Native (free-running threads).
    let mem = NativeMemory::new(n, cnt.registers()).with_owners(cnt.owners());
    let native_steps: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|p| {
                let mem = mem.clone();
                let mut h = cnt.handle();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    for _ in 0..per {
                        h.inc(&mut ctx, 2);
                    }
                    let _ = h.read(&mut ctx);
                    ctx.counts().total()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let native_total = cnt.audit_total(|r| mem.peek(r));
    assert_eq!(native_total, sim_total);
    // Per-process shared-op counts are schedule-independent for this
    // workload (fixed number of scans), so they must agree exactly.
    assert_eq!(sim_steps, native_steps);
}

/// The simulator's SWMR enforcement and the native one reject the same
/// misuse.
#[test]
fn swmr_enforced_on_both_backends() {
    let obj = ScanObject::new(2);
    // Native.
    let mem = NativeMemory::new(2, obj.registers::<MaxU64>()).with_owners(obj.owners());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ctx = mem.ctx(0);
        // Register n+2 is row 1's first cell — owned by P1.
        ctx.write(obj.n() + 2, MaxU64::new(1));
    }));
    assert!(result.is_err(), "native SWMR violation must panic");
    // Simulated.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = SimBuilder::new(obj.registers::<MaxU64>())
            .owners(obj.owners())
            .run_symmetric(1, move |ctx| {
                ctx.write(obj.n() + 2, MaxU64::new(1));
            });
    }));
    assert!(result.is_err(), "simulated SWMR violation must panic");
}

// ---------------------------------------------------------------------
// Randomized cross-backend stress: the same per-process operation
// scripts run under a seeded simulator schedule AND under free-running
// native threads; every recorded history from either backend must be
// linearizable against the object's sequential spec. The histories are
// batch-checked through `check_histories_parallel`, so this doubles as
// an integration test of the parallel checker on native-produced
// (real-time, non-deterministic) histories.
// ---------------------------------------------------------------------

use apram_core::counter::{CounterOp, CounterResp};
use apram_core::CounterSpec;
use apram_history::check::{CheckOutcome, CheckerConfig};
use apram_history::check_histories_parallel;
use apram_history::{History, Recorder};
use apram_objects::maxreg::{DirectMaxRegister, MaxRegOp, MaxRegResp, MaxRegSpec};
use apram_objects::striped::StripedCounter;
use apram_snapshot::afek::AfekSnapshot;
use apram_snapshot::{SnapOp, SnapResp, SnapshotSpec};

/// SplitMix64 step — a self-contained deterministic value source, so
/// both backends derive identical scripts from the same seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn assert_all_linearizable(label: &str, outcomes: &[CheckOutcome]) {
    for (i, o) in outcomes.iter().enumerate() {
        assert!(o.is_ok(), "{label}: history {i} not linearizable: {o:?}");
    }
}

/// Striped counter: seeded schedules in the simulator plus free-running
/// native threads on the packed register tier, one history per run, all
/// checked in one parallel batch.
#[test]
fn randomized_counter_stress_linearizable_on_both_backends() {
    let n = 3;
    let rounds = 3;
    let mut batch: Vec<History<CounterOp, CounterResp>> = Vec::new();
    for seed in 0..6u64 {
        let c = StripedCounter::new(n);
        // Per-process script: `true` = inc, `false` = read.
        let mut rng = seed;
        let scripts: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..rounds).map(|_| splitmix(&mut rng) % 2 == 0).collect())
            .collect();

        // Simulator under a seeded random schedule.
        let rec: Recorder<CounterOp, CounterResp> = Recorder::new();
        let (rec2, scripts2) = (rec.clone(), scripts.clone());
        let out = SimBuilder::new(c.registers())
            .owners(c.owners())
            .strategy(SeededRandom::new(seed))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut h = c.handle();
                for &inc in &scripts2[p] {
                    if inc {
                        rec2.invoke(p, CounterOp::Inc(1));
                        h.inc(ctx);
                        rec2.respond(p, CounterResp::Ack);
                    } else {
                        rec2.invoke(p, CounterOp::Read);
                        let v = h.read(ctx);
                        rec2.respond(p, CounterResp::Value(v as i64));
                    }
                }
            });
        out.assert_no_panics();
        batch.push(rec.snapshot());

        // Native threads on the packed tier, same scripts.
        let mem = NativeMemory::new_packed(n, c.registers()).with_owners(c.owners());
        let rec: Recorder<CounterOp, CounterResp> = Recorder::new();
        std::thread::scope(|s| {
            for (p, script) in scripts.iter().cloned().enumerate() {
                let mem = mem.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    let mut h = c.handle();
                    for inc in script {
                        if inc {
                            rec.invoke(p, CounterOp::Inc(1));
                            h.inc(&mut ctx);
                            rec.respond(p, CounterResp::Ack);
                        } else {
                            rec.invoke(p, CounterOp::Read);
                            let v = h.read(&mut ctx);
                            rec.respond(p, CounterResp::Value(v as i64));
                        }
                    }
                });
            }
        });
        batch.push(rec.snapshot());
    }
    let outcomes = check_histories_parallel(&CounterSpec, &batch, &CheckerConfig::default(), 0);
    assert_eq!(outcomes.len(), batch.len());
    assert_all_linearizable("counter", &outcomes);
}

/// Direct max-register: write_max/read scripts through the simulator
/// and through native threads on the packed `MaxI64` tier.
#[test]
fn randomized_maxreg_stress_linearizable_on_both_backends() {
    let n = 3;
    let rounds = 3;
    let mut batch: Vec<History<MaxRegOp, MaxRegResp>> = Vec::new();
    for seed in 0..6u64 {
        let r = DirectMaxRegister::new(n);
        // Per-process script: Some(v) = write_max(v), None = read.
        let mut rng = seed.wrapping_mul(0x5DEE_CE66);
        let scripts: Vec<Vec<Option<i64>>> = (0..n)
            .map(|_| {
                (0..rounds)
                    .map(|_| {
                        let bits = splitmix(&mut rng);
                        (bits % 2 == 0).then_some((bits >> 8) as i64 % 100)
                    })
                    .collect()
            })
            .collect();

        let rec: Recorder<MaxRegOp, MaxRegResp> = Recorder::new();
        let (rec2, scripts2) = (rec.clone(), scripts.clone());
        let out = SimBuilder::new(r.registers())
            .owners(r.owners())
            .strategy(SeededRandom::new(seed))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut h = r.handle();
                for &step in &scripts2[p] {
                    match step {
                        Some(v) => {
                            rec2.invoke(p, MaxRegOp::WriteMax(v));
                            h.write_max(ctx, v);
                            rec2.respond(p, MaxRegResp::Ack);
                        }
                        None => {
                            rec2.invoke(p, MaxRegOp::Read);
                            let v = h.read(ctx);
                            rec2.respond(p, MaxRegResp::Value(v));
                        }
                    }
                }
            });
        out.assert_no_panics();
        batch.push(rec.snapshot());

        let mem = NativeMemory::new_packed(n, r.registers()).with_owners(r.owners());
        let rec: Recorder<MaxRegOp, MaxRegResp> = Recorder::new();
        std::thread::scope(|s| {
            for (p, script) in scripts.iter().cloned().enumerate() {
                let mem = mem.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    let mut h = r.handle();
                    for step in script {
                        match step {
                            Some(v) => {
                                rec.invoke(p, MaxRegOp::WriteMax(v));
                                h.write_max(&mut ctx, v);
                                rec.respond(p, MaxRegResp::Ack);
                            }
                            None => {
                                rec.invoke(p, MaxRegOp::Read);
                                let v = h.read(&mut ctx);
                                rec.respond(p, MaxRegResp::Value(v));
                            }
                        }
                    }
                });
            }
        });
        batch.push(rec.snapshot());
    }
    let outcomes = check_histories_parallel(&MaxRegSpec, &batch, &CheckerConfig::default(), 0);
    assert_all_linearizable("maxreg", &outcomes);
}

/// Afek et al. bounded snapshot: update/snap scripts through the
/// simulator and through native threads on the buffered (announce/
/// validate) register tier — the wide-value path the packed tier
/// cannot take.
#[test]
fn randomized_afek_stress_linearizable_on_both_backends() {
    let n = 3;
    let mut batch: Vec<History<SnapOp<u32>, SnapResp<u32>>> = Vec::new();
    for seed in 0..4u64 {
        let snap = AfekSnapshot::new(n);
        let mut rng = seed.wrapping_mul(0xA076_1D64);
        let values: Vec<u32> = (0..n)
            .map(|_| (splitmix(&mut rng) % 90) as u32 + 1)
            .collect();

        let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
        let (rec2, values2) = (rec.clone(), values.clone());
        let out = SimBuilder::new(snap.registers::<u32>())
            .owners(snap.owners())
            .strategy(SeededRandom::new(seed))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                rec2.invoke(p, SnapOp::Update(values2[p]));
                snap.update(ctx, values2[p]);
                rec2.respond(p, SnapResp::Ack);
                rec2.invoke(p, SnapOp::Snap);
                let view = snap.snap::<u32, _>(ctx);
                rec2.respond(p, SnapResp::View(view));
            });
        out.assert_no_panics();
        batch.push(rec.snapshot());

        let mem = NativeMemory::new(n, snap.registers::<u32>()).with_owners(snap.owners());
        let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
        std::thread::scope(|s| {
            for (p, &v) in values.iter().enumerate() {
                let mem = mem.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    rec.invoke(p, SnapOp::Update(v));
                    snap.update(&mut ctx, v);
                    rec.respond(p, SnapResp::Ack);
                    rec.invoke(p, SnapOp::Snap);
                    let view = snap.snap::<u32, _>(&mut ctx);
                    rec.respond(p, SnapResp::View(view));
                });
            }
        });
        batch.push(rec.snapshot());
    }
    let spec = SnapshotSpec::<u32>::new(n);
    let outcomes = check_histories_parallel(&spec, &batch, &CheckerConfig::default(), 0);
    assert_all_linearizable("afek", &outcomes);
}
