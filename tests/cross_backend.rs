//! Cross-backend integration: the same algorithm code runs under the
//! deterministic simulator and under native threads, and the two
//! backends agree wherever determinism makes agreement well-defined.

use apram_lattice::{MaxU64, SetUnion};
use apram_model::sim::strategy::{Replay, SeededRandom};
use apram_model::sim::SimBuilder;
use apram_model::{MemCtx, NativeMemory};
use apram_objects::DirectCounter;
use apram_snapshot::ScanObject;

/// A sequential schedule in the simulator must produce exactly what a
/// sequential native execution produces.
#[test]
fn sequential_schedules_match_native() {
    let n = 3;
    let obj = ScanObject::new(n);

    // Native, strictly sequential.
    let mem = NativeMemory::new(n, obj.registers::<SetUnion<usize>>());
    let mut native = Vec::new();
    for p in 0..n {
        let mut ctx = mem.ctx(p);
        native.push(obj.scan(&mut ctx, SetUnion::singleton(p)));
    }

    // Simulator, schedule "P0 to completion, then P1, then P2".
    let per = (n * n + n + 1) + (n + 2); // literal scan steps
    let schedule: Vec<usize> = (0..n).flat_map(|p| std::iter::repeat_n(p, per)).collect();
    let out = SimBuilder::new(obj.registers::<SetUnion<usize>>())
        .owners(obj.owners())
        .strategy(Replay::strict(schedule))
        .run_symmetric(n, move |ctx| obj.scan(ctx, SetUnion::singleton(ctx.proc())));
    let sim = out.unwrap_results();
    assert_eq!(native, sim);
}

/// Simulator trace replay is deterministic end to end: run a random
/// schedule, capture the trace, replay it, compare everything.
#[test]
fn random_schedule_replays_identically() {
    let n = 4;
    let obj = ScanObject::new(n);
    let sim = SimBuilder::new(obj.registers::<MaxU64>()).owners(obj.owners());
    let body = move |ctx: &mut apram_model::SimCtx<MaxU64>| {
        let a = obj.scan(ctx, MaxU64::new(ctx.proc() as u64 + 10));
        let b = obj.read_max(ctx);
        (a, b)
    };
    let mut sim = sim.strategy(SeededRandom::new(99));
    let first = sim.run_symmetric(n, body);
    first.assert_no_panics();
    let schedule = first.trace.schedule();
    let mut sim = sim.strategy(Replay::strict(schedule.clone()));
    let second = sim.run_symmetric(n, body);
    assert_eq!(first.results, second.results);
    assert_eq!(second.trace.schedule(), schedule);
    assert_eq!(first.memory, second.memory);
    assert_eq!(first.counts, second.counts);
}

/// The direct counter produces the same final total on both backends,
/// and the simulator's step accounting matches the native context's.
#[test]
fn counter_totals_and_step_counts_agree() {
    let n = 3;
    let per = 5u64;
    let cnt = DirectCounter::new(n);

    // Simulator (round-robin).
    let out = SimBuilder::new(cnt.registers())
        .owners(cnt.owners())
        .run_symmetric(n, move |ctx| {
            let mut h = cnt.handle();
            for _ in 0..per {
                h.inc(ctx, 2);
            }
            h.read(ctx)
        });
    out.assert_no_panics();
    let sim_steps: Vec<u64> = out.counts.iter().map(|c| c.total()).collect();
    let sim_total = cnt.audit_total(|r| out.memory[r].clone());
    assert_eq!(sim_total, (n as u64 * per * 2) as i64);

    // Native (free-running threads).
    let mem = NativeMemory::new(n, cnt.registers()).with_owners(cnt.owners());
    let native_steps: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|p| {
                let mem = mem.clone();
                let mut h = cnt.handle();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    for _ in 0..per {
                        h.inc(&mut ctx, 2);
                    }
                    let _ = h.read(&mut ctx);
                    ctx.counts().total()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let native_total = cnt.audit_total(|r| mem.peek(r));
    assert_eq!(native_total, sim_total);
    // Per-process shared-op counts are schedule-independent for this
    // workload (fixed number of scans), so they must agree exactly.
    assert_eq!(sim_steps, native_steps);
}

/// The simulator's SWMR enforcement and the native one reject the same
/// misuse.
#[test]
fn swmr_enforced_on_both_backends() {
    let obj = ScanObject::new(2);
    // Native.
    let mem = NativeMemory::new(2, obj.registers::<MaxU64>()).with_owners(obj.owners());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ctx = mem.ctx(0);
        // Register n+2 is row 1's first cell — owned by P1.
        ctx.write(obj.n() + 2, MaxU64::new(1));
    }));
    assert!(result.is_err(), "native SWMR violation must panic");
    // Simulated.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = SimBuilder::new(obj.registers::<MaxU64>())
            .owners(obj.owners())
            .run_symmetric(1, move |ctx| {
                ctx.write(obj.n() + 2, MaxU64::new(1));
            });
    }));
    assert!(result.is_err(), "simulated SWMR violation must panic");
}
