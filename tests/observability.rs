//! End-to-end observability guarantees: the JSONL trace export parses
//! back and replays to a bit-identical trace, and the opt-in metrics
//! counters agree exactly with the trace-derived counts on a known
//! schedule.

use apram_model::sim::strategy::{Replay, SeededRandom};
use apram_model::sim::{Budgeted, ExploreConfig, ProcBody, SimBuilder, SimCtx};
use apram_model::telemetry::{buffer_sink, CountingCtx, Heartbeat};
use apram_model::{AccessKind, Json, MemCtx, MetricsLevel, TelemetryRegistry, Trace};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A deterministic body: three rounds of publish-then-collect, so every
/// process issues a known mix of reads and writes.
fn body(n: usize) -> impl Fn(&mut SimCtx<u64>) -> u64 + Send + Sync {
    move |ctx| {
        let p = ctx.proc();
        let mut acc = 0u64;
        for round in 0..3u64 {
            ctx.write(p, round * n as u64 + p as u64);
            for r in 0..n {
                acc = acc.wrapping_add(ctx.read(r));
            }
        }
        acc
    }
}

/// Export → parse → replay: the trace written as JSONL, parsed back,
/// and driven through `Replay::strict` must reproduce the original
/// execution bit for bit (same JSONL text, same results).
#[test]
fn jsonl_round_trips_through_replay() {
    let n = 3;
    let out = SimBuilder::new(vec![0u64; n])
        .owners((0..n).collect())
        .strategy(SeededRandom::new(42))
        .run_symmetric(n, body(n));
    out.assert_no_panics();
    assert!(!out.trace.is_empty());

    let text = out.trace.to_jsonl();
    let parsed = Trace::from_jsonl(&text).expect("exported JSONL must parse");
    assert_eq!(parsed.events(), out.trace.events());
    assert_eq!(
        parsed.to_jsonl(),
        text,
        "serialise-parse-serialise fixpoint"
    );

    let replayed = SimBuilder::new(vec![0u64; n])
        .owners((0..n).collect())
        .strategy(Replay::strict(parsed.schedule()))
        .run_symmetric(n, body(n));
    replayed.assert_no_panics();
    assert_eq!(replayed.trace.to_jsonl(), text, "replay diverged");
    assert_eq!(replayed.results, out.results);
    assert_eq!(replayed.memory, out.memory);
}

/// A corrupted line must be rejected, not silently skipped.
#[test]
fn jsonl_rejects_corruption() {
    let n = 2;
    let out = SimBuilder::new(vec![0u64; n])
        .owners((0..n).collect())
        .run_symmetric(n, body(n));
    let text = out.trace.to_jsonl();
    let corrupted = text.replacen("\"kind\":\"r\"", "\"kind\":\"x\"", 1);
    assert!(Trace::from_jsonl(&corrupted).is_err());
}

/// Under a fixed round-robin schedule, the step accounting is asserted
/// *through the telemetry registry*: the trace events are replayed into
/// sharded counters (shard = process) and per-op histograms, and the
/// legacy [`apram_model::Metrics`] struct must agree with the registry
/// on every number — it is now a thin façade over the same counts.
#[test]
fn metrics_agree_with_trace_counts() {
    let n = 4;
    let out = SimBuilder::new(vec![0u64; n])
        .owners((0..n).collect())
        .metrics(MetricsLevel::Full)
        .run_symmetric(n, body(n));
    out.assert_no_panics();

    let m = &out.metrics;
    assert!(m.enabled());

    // Drive the telemetry registry from the trace: per-process sharded
    // read/write counters plus per-register tallies.
    let reg = TelemetryRegistry::new(n);
    let reads = reg.counter("sim_reads");
    let writes = reg.counter("sim_writes");
    let mut reg_reads = vec![0u64; n];
    let mut reg_writes = vec![0u64; n];
    for ev in out.trace.events() {
        match ev.kind {
            AccessKind::Read => {
                reads.inc(ev.proc);
                reg_reads[ev.reg] += 1;
            }
            AccessKind::Write => {
                writes.inc(ev.proc);
                reg_writes[ev.reg] += 1;
            }
        }
    }

    // The registry is the authority; the legacy Metrics API must agree
    // with it shard by shard and in total.
    for p in 0..n {
        assert_eq!(m.histogram[p].reads, reads.shard_value(p), "process {p}");
        assert_eq!(m.histogram[p].writes, writes.shard_value(p), "process {p}");
    }
    assert_eq!(m.total_reads(), reads.total());
    assert_eq!(m.total_writes(), writes.total());
    assert_eq!(m.histogram, out.trace.counts(n));
    assert_eq!(m.histogram, out.counts);

    // Per-register counters, recomputed straight from the events.
    for r in 0..n {
        assert_eq!(m.registers[r].reads, reg_reads[r], "register {r} reads");
        assert_eq!(m.registers[r].writes, reg_writes[r], "register {r} writes");
    }
    assert_eq!(m.total_reads(), out.trace.len() as u64 - m.total_writes());

    // Each process writes 3 times and reads 3n times in `body`.
    for p in 0..n {
        assert_eq!(m.histogram[p].writes, 3, "process {p}");
        assert_eq!(m.histogram[p].reads, 3 * n as u64, "process {p}");
    }

    // The registry's exports carry the same totals and parse cleanly.
    let prom = reg.to_prometheus();
    apram_model::validate_prometheus(&prom).expect("registry Prometheus text must parse");
    assert!(prom.contains(&format!("sim_reads {}", reads.total())));
    let json = reg.to_json().to_compact();
    assert!(json.contains(&format!("\"total\":{}", reads.total())));
}

/// Every heartbeat JSONL record carries a wall-clock `elapsed_ms` field
/// and the values never go backwards across the stream (including the
/// final beat).
#[test]
fn heartbeat_elapsed_ms_is_present_and_monotone() {
    let n = 2;
    let (sink, buf) = buffer_sink();
    let econfig = ExploreConfig::new()
        .max_depth(8)
        .max_runs(50)
        .heartbeat_with(Heartbeat::shared(Duration::ZERO, sink));
    let stats = SimBuilder::new(vec![0u64; n])
        .owners((0..n).collect())
        .explore(
            &econfig,
            move || {
                (0..n)
                    .map(|_| {
                        let b = body(n);
                        Box::new(move |ctx: &mut SimCtx<u64>| b(ctx)) as ProcBody<'static, u64, u64>
                    })
                    .collect()
            },
            |out| {
                out.assert_no_panics();
                true
            },
        );
    assert!(stats.runs > 0);

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let mut beats = 0u64;
    let mut prev_ms = 0u64;
    for line in text.lines() {
        let doc = apram_model::json::parse(line).expect("heartbeat line must parse as JSON");
        let ms = doc
            .get("elapsed_ms")
            .and_then(Json::as_u64)
            .expect("every beat must carry elapsed_ms");
        assert!(
            ms >= prev_ms,
            "elapsed_ms went backwards: {prev_ms} -> {ms}\n{line}"
        );
        prev_ms = ms;
        assert!(doc.get("runs").and_then(Json::as_u64).is_some());
        beats += 1;
    }
    assert!(
        beats >= 2,
        "expected per-run beats plus a final beat, got {beats}"
    );
}

/// Property check across random schedules: [`CountingCtx`]'s per-op
/// read/write totals must equal the contention profiler's per-cell sums
/// — the two observers count the same accesses from opposite sides of
/// the [`MemCtx`] boundary (op-level wrapper vs scheduler-side
/// profiling), so their totals agree exactly on every schedule.
#[test]
fn counting_ctx_totals_match_profiler_cell_sums() {
    let n = 3;
    for seed in 0..8u64 {
        let totals: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(vec![(0, 0); n]));
        let sink = Arc::clone(&totals);
        let out = SimBuilder::new(vec![0u64; n])
            .owners((0..n).collect())
            .strategy(SeededRandom::new(seed))
            .profile(true)
            .run_symmetric(n, move |ctx: &mut SimCtx<u64>| {
                let p = ctx.proc();
                let mut c = CountingCtx::new(ctx);
                c.begin_op();
                let mut acc = 0u64;
                for round in 0..3u64 {
                    c.write(p, round * n as u64 + p as u64);
                    for r in 0..n {
                        acc = acc.wrapping_add(c.read(r));
                    }
                }
                sink.lock().unwrap()[p] = (c.op_reads(), c.op_writes());
                acc
            });
        out.assert_no_panics();

        let map = out.contention.expect("profiling was enabled");
        assert_eq!(map.runs, 1, "seed {seed}");
        let cell_reads: u64 = map.cells.iter().map(|c| c.reads).sum();
        let cell_writes: u64 = map.cells.iter().map(|c| c.writes).sum();
        let per_op = totals.lock().unwrap();
        let op_reads: u64 = per_op.iter().map(|&(r, _)| r).sum();
        let op_writes: u64 = per_op.iter().map(|&(_, w)| w).sum();
        assert_eq!(cell_reads, op_reads, "seed {seed}");
        assert_eq!(cell_writes, op_writes, "seed {seed}");
        // Per-process raw steps are the same numbers sliced the other way.
        for p in 0..n {
            assert_eq!(
                map.proc_steps[p],
                per_op[p].0 + per_op[p].1,
                "seed {seed} process {p}"
            );
        }
        // And the trace-derived counts agree with both observers.
        assert_eq!(out.counts, out.trace.counts(n), "seed {seed}");
        for p in 0..n {
            assert_eq!(out.counts[p].reads, per_op[p].0, "seed {seed} process {p}");
            assert_eq!(out.counts[p].writes, per_op[p].1, "seed {seed} process {p}");
        }
    }
}

/// Metrics default to off: no collection, empty vectors.
#[test]
fn metrics_off_by_default() {
    let n = 2;
    let out = SimBuilder::new(vec![0u64; n])
        .owners((0..n).collect())
        .run_symmetric(n, body(n));
    assert!(!out.metrics.enabled());
    assert!(out.metrics.registers.is_empty());
    assert!(out.metrics.histogram.is_empty());
}
