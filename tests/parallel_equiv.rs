//! PR acceptance: sequential-vs-parallel exploration equivalence.
//!
//! The parallel explorer must be a drop-in replacement for the
//! sequential one: identical `runs` counts, identical exhaustion and
//! truncation flags, bit-identical step accounting, identical sleep-set
//! pruning totals, and — when the workload violates — the same
//! canonical-order first violation, for every thread count. The batch
//! history checker must likewise agree with a sequential map.

use apram_bench::{e9_factory, E9RecCell, E9_PROCS};
use apram_history::{check_histories_parallel, check_linearizable, CheckerConfig};
use apram_lattice::{Tagged, TaggedVec};
use apram_model::sim::shrink::ShrinkConfig;
use apram_model::sim::{Budgeted, ExploreConfig, ProcBody, SimBuilder, SimCtx, SimOutcome};
use apram_snapshot::collect::CollectArray;
use apram_snapshot::snapshot::SnapshotSpec;
use apram_snapshot::Snapshot;
use std::sync::{Arc, Mutex};

/// A clean (always linearizable) 2-process snapshot workload whose
/// written values vary with `seed`, so distinct seeds produce distinct
/// executions over the same tree shape.
fn snapshot_make(
    snap: Snapshot,
    seed: u64,
) -> impl FnMut() -> Vec<ProcBody<'static, TaggedVec<u32>, ()>> + Copy + Send {
    move || {
        (0..2usize)
            .map(|p| {
                let v = (seed as u32).wrapping_mul(31) + p as u32 + 1;
                Box::new(move |ctx: &mut SimCtx<TaggedVec<u32>>| {
                    let mut h = snap.handle::<u32>();
                    h.update(ctx, v);
                    let _ = h.snap(ctx);
                }) as ProcBody<'static, TaggedVec<u32>, ()>
            })
            .collect()
    }
}

#[test]
fn clean_snapshot_counts_match_sequential_across_seeds_and_threads() {
    for seed in [0u64, 1, 2] {
        let snap = Snapshot::new(2);
        // Vary the truncation depth with the seed so each seed explores
        // a differently sized tree.
        let econfig = ExploreConfig::new().max_depth(9 + seed as usize);
        let make = snapshot_make(snap, seed);
        let sim = SimBuilder::new(snap.registers::<u32>()).owners(snap.owners());
        let seq = sim.explore(&econfig, make, |out| {
            out.assert_no_panics();
            true
        });
        assert!(seq.violation.is_none());
        assert!(seq.runs > 100, "tree unexpectedly small: {seq:?}");
        for threads in [1usize, 2, 4] {
            let par = sim.explore_parallel(&econfig, threads, |_| {
                (make, |out: &SimOutcome<TaggedVec<u32>, ()>| {
                    out.assert_no_panics();
                    true
                })
            });
            let tag = format!("seed={seed} threads={threads}");
            assert_eq!(par.runs, seq.runs, "{tag}");
            assert_eq!(par.exhausted, seq.exhausted, "{tag}");
            assert_eq!(par.truncated, seq.truncated, "{tag}");
            assert_eq!(par.executed_steps, seq.executed_steps, "{tag}");
            assert_eq!(par.replayed_steps, seq.replayed_steps, "{tag}");
            assert_eq!(par.max_depth_reached, seq.max_depth_reached, "{tag}");
            assert!(par.violation.is_none(), "{tag}");
        }
    }
}

/// PR acceptance: sequential and parallel exploration of the same tree
/// produce *identical merged telemetry* — the per-run step histograms
/// (bucket-exact, hence every quantile) and run counters recorded
/// through a sharded [`TelemetryRegistry`] agree regardless of how the
/// schedules were distributed over workers.
#[test]
fn merged_telemetry_is_identical_across_sequential_and_parallel() {
    use apram_model::TelemetryRegistry;
    let snap = Snapshot::new(2);
    let econfig = ExploreConfig::new().max_depth(10);
    let make = snapshot_make(snap, 3);
    let sim = SimBuilder::new(snap.registers::<u32>()).owners(snap.owners());

    // Sequential reference: one shard records every run.
    let seq_reg = TelemetryRegistry::new(1);
    let hist = seq_reg.histogram("run_steps");
    let runs = seq_reg.counter("runs");
    let seq = sim.explore(&econfig, make, |out| {
        out.assert_no_panics();
        let steps: u64 = out.counts.iter().map(|c| c.reads + c.writes).sum();
        hist.record(0, steps);
        runs.inc(0);
        true
    });
    assert!(seq.runs > 100, "tree unexpectedly small: {seq:?}");
    let seq_hist = seq_reg.histogram_snapshot("run_steps").unwrap();
    assert_eq!(seq_hist.count, seq.runs);

    // Parallel: four workers, each recording into its own shard; the
    // merged view must be bit-identical to the sequential one.
    let threads = 4;
    let par_reg = TelemetryRegistry::new(threads);
    let par = sim.explore_parallel(&econfig, threads, |worker| {
        let hist = par_reg.histogram("run_steps");
        let runs = par_reg.counter("runs");
        let visit = move |out: &SimOutcome<TaggedVec<u32>, ()>| {
            out.assert_no_panics();
            let steps: u64 = out.counts.iter().map(|c| c.reads + c.writes).sum();
            hist.record(worker, steps);
            runs.inc(worker);
            true
        };
        (make, visit)
    });
    assert_eq!(par.runs, seq.runs);
    let par_hist = par_reg.histogram_snapshot("run_steps").unwrap();
    assert_eq!(
        par_hist, seq_hist,
        "merged histograms must be bit-identical"
    );
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(par_hist.quantile(q), seq_hist.quantile(q), "q={q}");
    }
    assert_eq!(par_hist.max, seq_hist.max);
    assert_eq!(par_reg.counter_total("runs"), seq_reg.counter_total("runs"));

    // Per-worker accounting: every run is owned by exactly one worker.
    assert_eq!(par.worker_runs.len(), threads);
    assert_eq!(par.worker_runs.iter().sum::<u64>(), par.runs);
    assert_eq!(
        (0..threads)
            .map(|w| { par_reg.histogram("run_steps").shard_snapshot(w).count })
            .sum::<u64>(),
        par.runs
    );
}

/// PR acceptance: with profiling on, the merged [`ContentionMap`] from
/// parallel exploration is bit-identical to the sequential explorer's
/// for every thread count — the map's merge is commutative and
/// partition-independent, so how runs were distributed over workers
/// cannot show through.
#[test]
fn contention_maps_are_bit_identical_across_thread_counts() {
    use apram_model::ContentionMap;
    let snap = Snapshot::new(2);
    let econfig = ExploreConfig::new().max_depth(10).profile(true);
    let make = snapshot_make(snap, 5);
    let sim = SimBuilder::new(snap.registers::<u32>()).owners(snap.owners());

    let seq = sim.explore(&econfig, make, |out| {
        out.assert_no_panics();
        true
    });
    let seq_map: ContentionMap = seq.contention.clone().expect("profiling was enabled");
    assert_eq!(seq_map.runs, seq.runs, "one profiled run per explored run");
    assert!(seq_map.total_steps() > 0);
    assert!(
        !seq_map.stall_edges.is_empty(),
        "snapshot workload must stall"
    );

    for threads in [1usize, 2, 4] {
        let par = sim.explore_parallel(&econfig, threads, |_| {
            (make, |out: &SimOutcome<TaggedVec<u32>, ()>| {
                out.assert_no_panics();
                true
            })
        });
        let par_map = par.contention.expect("profiling was enabled");
        assert_eq!(par_map, seq_map, "threads={threads}");
        assert_eq!(
            par_map.to_json().to_compact(),
            seq_map.to_json().to_compact(),
            "threads={threads}: JSON export must be byte-identical"
        );
    }

    // Same guarantee for the sleep-set-reduced engines.
    let seq_red = sim.explore_reduced(&econfig, make, |out| {
        out.assert_no_panics();
        true
    });
    let seq_red_map = seq_red.contention.expect("profiling was enabled");
    for threads in [1usize, 4] {
        let par = sim.explore_reduced_parallel(&econfig, threads, |_| {
            (make, |out: &SimOutcome<TaggedVec<u32>, ()>| {
                out.assert_no_panics();
                true
            })
        });
        assert_eq!(
            par.contention.expect("profiling was enabled"),
            seq_red_map,
            "reduced threads={threads}"
        );
    }
}

#[test]
fn reduced_counts_and_pruning_match_sequential() {
    let snap = Snapshot::new(2);
    let econfig = ExploreConfig::new().max_depth(10);
    let make = snapshot_make(snap, 7);
    let sim = SimBuilder::new(snap.registers::<u32>()).owners(snap.owners());
    let seq = sim.explore_reduced(&econfig, make, |out| {
        out.assert_no_panics();
        true
    });
    assert!(seq.sleep_skips > 0, "reduction must prune: {seq:?}");
    for threads in [1usize, 2, 4] {
        let par = sim.explore_reduced_parallel(&econfig, threads, |_| {
            (make, |out: &SimOutcome<TaggedVec<u32>, ()>| {
                out.assert_no_panics();
                true
            })
        });
        assert_eq!(par.runs, seq.runs, "threads={threads}");
        assert_eq!(par.exhausted, seq.exhausted, "threads={threads}");
        assert_eq!(par.truncated, seq.truncated, "threads={threads}");
        assert_eq!(par.executed_steps, seq.executed_steps, "threads={threads}");
        assert_eq!(par.replayed_steps, seq.replayed_steps, "threads={threads}");
        assert_eq!(par.sleep_skips, seq.sleep_skips, "threads={threads}");
    }
}

#[test]
fn naive_collect_violator_yields_identical_first_violation() {
    let arr = CollectArray::new(E9_PROCS);
    let spec = SnapshotSpec::<u32>::new(E9_PROCS);
    let econfig = ExploreConfig::new().shrink(ShrinkConfig::default());

    // Sequential reference: first violation in canonical DFS order.
    let cell: E9RecCell = Arc::new(Mutex::new(None));
    let visit_cell = Arc::clone(&cell);
    let seq = SimBuilder::new(arr.registers::<u32>())
        .owners(arr.owners())
        .explore(&econfig, e9_factory(arr, Arc::clone(&cell)), |out| {
            out.assert_no_panics();
            let hist = visit_cell.lock().unwrap().take().unwrap().snapshot();
            check_linearizable(&spec, &hist, &CheckerConfig::default()).is_ok()
        });
    let seq_report = seq.violation.expect("naive collect must violate");

    for threads in [1usize, 2, 4] {
        let spec = &spec;
        let par = SimBuilder::new(arr.registers::<u32>())
            .owners(arr.owners())
            .explore_parallel(&econfig, threads, |_| {
                let cell: E9RecCell = Arc::new(Mutex::new(None));
                let visit_cell = Arc::clone(&cell);
                let make = e9_factory(arr, cell);
                let visit = move |out: &SimOutcome<Tagged<u32>, ()>| {
                    out.assert_no_panics();
                    let hist = visit_cell.lock().unwrap().take().unwrap().snapshot();
                    check_linearizable(spec, &hist, &CheckerConfig::default()).is_ok()
                };
                (make, visit)
            });
        let report = par.violation.expect("parallel must find the violation");
        // Canonical first-violation selection: the captured schedule —
        // and hence the shrunk one — is the sequential explorer's,
        // regardless of which worker stumbled on a violation first.
        assert_eq!(report.original, seq_report.original, "threads={threads}");
        assert_eq!(report.schedule, seq_report.schedule, "threads={threads}");
        assert!(!par.exhausted, "threads={threads}");
    }
}

#[test]
fn parallel_batch_check_matches_sequential_checks() {
    // Collect every history of a budget-capped naive-collect exploration
    // (the batch mixes linearizable and pending-heavy runs), then check
    // it sequentially and in parallel at several thread counts.
    let arr = CollectArray::new(E9_PROCS);
    let spec = SnapshotSpec::<u32>::new(E9_PROCS);
    let cfg = CheckerConfig::default();
    let sink: Arc<Mutex<Vec<_>>> = Arc::new(Mutex::new(Vec::new()));
    let stats = SimBuilder::new(arr.registers::<u32>())
        .owners(arr.owners())
        .explore_parallel(&ExploreConfig::new().max_runs(300), 2, |_| {
            let cell: E9RecCell = Arc::new(Mutex::new(None));
            let visit_cell = Arc::clone(&cell);
            let make = e9_factory(arr, cell);
            let sink = Arc::clone(&sink);
            let visit = move |out: &SimOutcome<Tagged<u32>, ()>| {
                out.assert_no_panics();
                let hist = visit_cell.lock().unwrap().take().unwrap().snapshot();
                sink.lock().unwrap().push(hist);
                true
            };
            (make, visit)
        });
    let batch = std::mem::take(&mut *sink.lock().unwrap());
    assert_eq!(batch.len() as u64, stats.runs, "one history per run");
    let sequential: Vec<_> = batch
        .iter()
        .map(|h| check_linearizable(&spec, h, &cfg))
        .collect();
    assert!(sequential.iter().any(|o| o.is_ok()));
    for threads in [0usize, 1, 2, 4, 8] {
        let parallel = check_histories_parallel(&spec, &batch, &cfg, threads);
        assert_eq!(parallel, sequential, "threads={threads}");
    }
}
