//! Independent witness verification across the snapshot implementations.
//!
//! Every witness linearization the checker returns must survive
//! [`verify_witness`] — an independent replay that checks real-time
//! precedence and spec legality without trusting the search. Covered
//! implementations: the double collect, the lock-based baseline (native
//! threads), the Afek et al. snapshot, and the paper's Figure 5 scan.
//! A permuted or truncated witness must be rejected.

use apram_history::{
    check_linearizable, verify_witness, CheckOutcome, CheckerConfig, History, Ops, Recorder,
};
use apram_lattice::{Tagged, TaggedVec};
use apram_model::sim::{Budgeted, ExploreConfig, ProcBody, SimBuilder, SimCtx};
use apram_snapshot::afek::{AfekReg, AfekSnapshot};
use apram_snapshot::collect::{CollectArray, DoubleCollect};
use apram_snapshot::lock::LockSnapshot;
use apram_snapshot::snapshot::{SnapOp, SnapResp, SnapshotSpec};
use apram_snapshot::Snapshot;
use std::cell::RefCell;
use std::rc::Rc;

type RecCell = Rc<RefCell<Option<Recorder<SnapOp<u32>, SnapResp<u32>>>>>;
type Hist = History<SnapOp<u32>, SnapResp<u32>>;

/// Explore the 2-process update-then-snap program of one implementation,
/// checking every history and returning each `(history, witness)` pair.
/// Panics when any history fails the check (these objects are all
/// linearizable) or when a witness fails independent verification.
fn audit<T, FMake>(
    registers: Vec<T>,
    owners: Vec<usize>,
    cell: &RecCell,
    make: FMake,
    max_depth: usize,
) -> Vec<(Hist, Vec<usize>)>
where
    T: Clone + Send,
    FMake: FnMut() -> Vec<ProcBody<'static, T, ()>>,
{
    let spec = SnapshotSpec::<u32>::new(2);
    let mut witnesses = Vec::new();
    let stats = SimBuilder::new(registers).owners(owners).explore(
        &ExploreConfig::new().max_runs(1_500).max_depth(max_depth),
        make,
        |out| {
            out.assert_no_panics();
            let hist = cell.borrow_mut().take().unwrap().snapshot();
            match check_linearizable(&spec, &hist, &CheckerConfig::default()) {
                CheckOutcome::Linearizable(w) => {
                    assert!(
                        verify_witness(&spec, &hist, &w),
                        "checker witness failed independent verification: {w:?}\n{hist:?}"
                    );
                    witnesses.push((hist, w));
                }
                other => panic!("history unexpectedly not linearizable: {other:?}\n{hist:?}"),
            }
            true
        },
    );
    assert!(stats.runs > 50, "too few schedules explored: {stats:?}");
    assert_eq!(witnesses.len() as u64, stats.runs);
    witnesses
}

fn double_collect_witnesses() -> Vec<(Hist, Vec<usize>)> {
    let arr = CollectArray::new(2);
    let cell: RecCell = Rc::new(RefCell::new(None));
    let factory_cell = Rc::clone(&cell);
    let make = move || {
        let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
        *factory_cell.borrow_mut() = Some(rec.clone());
        (0..2usize)
            .map(|p| {
                let rec = rec.clone();
                Box::new(move |ctx: &mut SimCtx<Tagged<u32>>| {
                    let mut h = DoubleCollect::new(arr);
                    rec.record(p, SnapOp::Update(p as u32 + 1), || {
                        h.update(ctx, p as u32 + 1);
                        SnapResp::Ack
                    });
                    rec.invoke(p, SnapOp::Snap);
                    let view = h.snap(ctx);
                    rec.respond(p, SnapResp::View(view));
                }) as ProcBody<'static, Tagged<u32>, ()>
            })
            .collect()
    };
    audit(arr.registers::<u32>(), arr.owners(), &cell, make, 12)
}

#[test]
fn double_collect_witnesses_verify() {
    let _ = double_collect_witnesses();
}

#[test]
fn figure5_scan_witnesses_verify() {
    let snap = Snapshot::new(2);
    let cell: RecCell = Rc::new(RefCell::new(None));
    let factory_cell = Rc::clone(&cell);
    let make = move || {
        let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
        *factory_cell.borrow_mut() = Some(rec.clone());
        (0..2usize)
            .map(|p| {
                let rec = rec.clone();
                Box::new(move |ctx: &mut SimCtx<TaggedVec<u32>>| {
                    let mut h = snap.handle::<u32>();
                    rec.record(p, SnapOp::Update(p as u32 + 1), || {
                        h.update(ctx, p as u32 + 1);
                        SnapResp::Ack
                    });
                    rec.invoke(p, SnapOp::Snap);
                    let view = h.snap(ctx);
                    rec.respond(p, SnapResp::View(view));
                }) as ProcBody<'static, TaggedVec<u32>, ()>
            })
            .collect()
    };
    let _ = audit(snap.registers::<u32>(), snap.owners(), &cell, make, 12);
}

#[test]
fn afek_snapshot_witnesses_verify() {
    let asnap = AfekSnapshot::new(2);
    let cell: RecCell = Rc::new(RefCell::new(None));
    let factory_cell = Rc::clone(&cell);
    let make = move || {
        let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
        *factory_cell.borrow_mut() = Some(rec.clone());
        (0..2usize)
            .map(|p| {
                let rec = rec.clone();
                Box::new(move |ctx: &mut SimCtx<AfekReg<u32>>| {
                    rec.record(p, SnapOp::Update(p as u32 + 1), || {
                        asnap.update(ctx, p as u32 + 1);
                        SnapResp::Ack
                    });
                    rec.invoke(p, SnapOp::Snap);
                    let view = asnap.snap(ctx);
                    rec.respond(p, SnapResp::View(view));
                }) as ProcBody<'static, AfekReg<u32>, ()>
            })
            .collect()
    };
    let _ = audit(asnap.registers::<u32>(), asnap.owners(), &cell, make, 12);
}

/// The lock-based baseline runs on native threads (it has no simulated
/// register layout); its recorded histories must check out and their
/// witnesses must verify, every round.
#[test]
fn lock_snapshot_witnesses_verify() {
    let n = 3usize;
    let spec = SnapshotSpec::<u32>::new(n);
    for round in 0..10u32 {
        let obj: LockSnapshot<u32> = LockSnapshot::new(n);
        let rec: Recorder<SnapOp<u32>, SnapResp<u32>> = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..n {
                let obj = obj.clone();
                let rec = rec.clone();
                s.spawn(move || {
                    let v = round * 10 + p as u32 + 1;
                    rec.record(p, SnapOp::Update(v), || {
                        obj.update(p, v);
                        SnapResp::Ack
                    });
                    rec.invoke(p, SnapOp::Snap);
                    let view = obj.snap();
                    rec.respond(p, SnapResp::View(view));
                });
            }
        });
        let hist = rec.snapshot();
        match check_linearizable(&spec, &hist, &CheckerConfig::default()) {
            CheckOutcome::Linearizable(w) => assert!(
                verify_witness(&spec, &hist, &w),
                "round {round}: witness failed verification: {w:?}\n{hist:?}"
            ),
            other => panic!("round {round}: lock snapshot not linearizable? {other:?}\n{hist:?}"),
        }
    }
}

/// Corrupting a valid witness must be caught: swapping two entries that
/// are real-time ordered breaks precedence, and dropping an entry leaves
/// a completed operation unaccounted for.
#[test]
fn permuted_and_truncated_witnesses_are_rejected() {
    let spec = SnapshotSpec::<u32>::new(2);
    let witnesses = double_collect_witnesses();

    let mut rejected_swap = false;
    'hunt: for (hist, w) in &witnesses {
        let ops = Ops::extract(hist);
        for i in 0..w.len() {
            for j in i + 1..w.len() {
                if ops.precedes(w[i], w[j]) {
                    let mut bad = w.clone();
                    bad.swap(i, j);
                    assert!(
                        !verify_witness(&spec, hist, &bad),
                        "precedence-violating permutation accepted: {bad:?}\n{hist:?}"
                    );
                    rejected_swap = true;
                    break 'hunt;
                }
            }
        }
    }
    assert!(rejected_swap, "no witness contained an ordered pair");

    let (hist, w) = witnesses
        .iter()
        .find(|(_, w)| !w.is_empty())
        .expect("non-empty witness");
    let mut bad = w.clone();
    bad.pop();
    assert!(
        !verify_witness(&spec, hist, &bad),
        "witness missing a completed operation was accepted"
    );
}
