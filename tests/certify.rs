//! End-to-end wait-freedom certification (the tier-1 face of E10): the
//! certifier passes the paper's scan object under crashes, convicts the
//! lock-based snapshot with a minimized crash-pattern witness, and the
//! parallel certifier is bit-identical to the sequential one.

#![allow(clippy::type_complexity)]

use apram_lattice::MaxU64;
use apram_model::sim::{
    Budgeted, Certificate, CertifyConfig, ExploreConfig, ProcBody, SimBuilder, SimCtx, SimOutcome,
    ViolationKind,
};
use apram_snapshot::{ScanHandle, ScanObject, SimLockSnapshot};

/// Workload: every process contributes `p + 1` with one `WriteL` and
/// returns one `ReadMax`, each an optimized scan of `n² − 1` reads and
/// `n + 1` writes — so the analytic per-process bound is `2(n² + n)`.
fn scan_factory(obj: ScanObject) -> impl FnMut() -> Vec<ProcBody<'static, MaxU64, MaxU64>> + Send {
    move || {
        (0..obj.n())
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<MaxU64>| {
                    let mut h: ScanHandle<MaxU64> = ScanHandle::new(obj);
                    h.write_l(ctx, MaxU64(p as u64 + 1));
                    h.read_max(ctx)
                }) as ProcBody<'static, MaxU64, MaxU64>
            })
            .collect()
    }
}

/// Semantic check: a surviving process's `ReadMax` must include its own
/// earlier `WriteL` and never exceed the largest input in play.
fn scan_check(n: usize) -> impl FnMut(&SimOutcome<MaxU64, MaxU64>) -> bool + Send {
    move |out| {
        (0..n).all(|p| match &out.results[p] {
            Some(MaxU64(v)) => *v > p as u64 && *v <= n as u64,
            None => out.crashed[p] || out.panics[p].is_some(),
        })
    }
}

fn scan_certify(n: usize, f: usize, depth: usize) -> Certificate {
    let obj = ScanObject::new(n);
    let sim = SimBuilder::new(obj.registers::<MaxU64>()).owners(obj.owners());
    let bound = (2 * (n * n + n)) as u64;
    let ccfg = CertifyConfig::new(vec![bound; n])
        .explore(ExploreConfig::new().max_depth(depth).max_crashes(f));
    sim.certify(&ccfg, scan_factory(obj), scan_check(n))
}

#[test]
fn scan_object_certifies_under_crashes() {
    for (n, f, depth) in [(2, 0, 8), (2, 1, 7), (2, 2, 7), (3, 1, 4), (3, 2, 4)] {
        let cert = scan_certify(n, f, depth);
        assert!(
            cert.passed(),
            "scan object failed certification at n={n} f={f}: {cert:?}"
        );
        assert!(cert.runs > 1, "n={n} f={f}: {cert:?}");
        if f > 0 {
            assert!(cert.crash_branches > 0, "n={n} f={f}: {cert:?}");
        }
        // Survivor latency respects (and under crashes stays within) the
        // analytic bound.
        let bound = (2 * (n * n + n)) as u64;
        assert!(
            cert.worst_steps.iter().all(|&s| s <= bound),
            "n={n} f={f}: {cert:?}"
        );
    }
}

fn lock_pair() -> (
    impl FnMut() -> Vec<ProcBody<'static, u64, ()>> + Send,
    impl FnMut(&SimOutcome<u64, ()>) -> bool + Send,
) {
    let factory = || {
        (0..2usize)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<u64>| {
                    let _ = SimLockSnapshot::update_snap(ctx, p as u64 + 1);
                }) as ProcBody<'static, u64, ()>
            })
            .collect::<Vec<_>>()
    };
    (factory, |_: &SimOutcome<u64, ()>| true)
}

fn lock_config() -> CertifyConfig {
    CertifyConfig::new([18u64; 2]).explore(ExploreConfig::new().max_depth(6).max_crashes(1))
}

#[test]
fn lock_snapshot_fails_with_minimized_crash_witness() {
    let sim = SimBuilder::new(SimLockSnapshot::registers()).max_steps(64);
    let (factory, check) = lock_pair();
    let cert = sim.certify(&lock_config(), factory, check);
    assert!(!cert.passed(), "a lock is not wait-free: {cert:?}");
    let v = cert.violation.as_ref().expect("violation witness");
    // The survivor starves on the lock spin: a step-bound conviction.
    let ViolationKind::StepBound { proc, steps, bound } = &v.kind else {
        panic!("expected a step-bound conviction, got {:?}", v.kind)
    };
    assert!(steps > bound, "{:?}", v.kind);
    assert_eq!(*proc, 1, "the spinner is the second process: {v:?}");
    // The shrinker minimizes the crash pattern *alongside* the schedule
    // — here all the way to empty: once the lock holder is simply never
    // scheduled again, the crash adds nothing. (A crash in this model
    // is permanent descheduling, so every crash-starvation witness has
    // a crash-free core.)
    assert!(v.report.crashes.is_empty(), "minimal crash pattern: {v:?}");
    assert!(v.crashed.iter().all(|&c| !c), "{v:?}");
    // Shrinking kept the witness schedule locally minimal: the holder
    // takes a step or two, the survivor spins just past its bound.
    assert!((v.report.schedule.len() as u64) <= bound + 3, "{v:?}");
}

#[test]
fn parallel_certification_is_bit_identical() {
    // A passing cell…
    let obj = ScanObject::new(2);
    let sim = SimBuilder::new(obj.registers::<MaxU64>()).owners(obj.owners());
    let ccfg =
        CertifyConfig::new([12u64; 2]).explore(ExploreConfig::new().max_depth(7).max_crashes(2));
    let seq = sim.certify(&ccfg, scan_factory(obj), scan_check(2));
    let par = sim.certify_parallel(&ccfg, 4, |_| (scan_factory(obj), scan_check(2)));
    assert!(seq.passed());
    assert_eq!(seq, par, "parallel certificate differs on the passing cell");

    // …and the failing one.
    let sim = SimBuilder::new(SimLockSnapshot::registers()).max_steps(64);
    let (factory, check) = lock_pair();
    let seq = sim.certify(&lock_config(), factory, check);
    let par = sim.certify_parallel(&lock_config(), 4, |_| lock_pair());
    assert!(!seq.passed());
    assert_eq!(seq, par, "parallel certificate differs on the failing cell");
}
