//! Multiple objects sharing one register array (via base offsets), and
//! linearizability's locality across them.
//!
//! The paper's §3.2 locality claim means independently-implemented
//! objects compose freely; here a max-register scan object and a
//! grow-set scan object live side by side in a single simulated memory
//! (exercising `ScanObject::at`), processes interleave operations on
//! both, and the composed behaviour is checked object by object.

use apram_history::check::{check_linearizable, CheckerConfig};
use apram_history::Recorder;
use apram_lattice::{JoinSemilattice, MaxU64, SetUnion};
use apram_model::sim::strategy::{Pct, SeededRandom};
use apram_model::sim::SimBuilder;
use apram_model::MemCtx;
use apram_objects::maxreg::{MaxRegOp, MaxRegResp, MaxRegSpec};
use apram_snapshot::snapshot::{ScanMaxOp, ScanMaxResp, ScanMaxSpec};
use apram_snapshot::{ScanHandle, ScanObject};

/// Both objects' registers carry the same lattice type so they can share
/// one memory: a product of the max lattice and the set lattice (each
/// object only uses its component).
type L = (MaxU64, SetUnion<u64>);

/// An offset view of a larger memory (same trick the one-shot agreement
/// uses internally).
struct Offset<'a, C> {
    inner: &'a mut C,
    base: usize,
}

impl<C: MemCtx<L>> MemCtx<L> for Offset<'_, C> {
    fn proc(&self) -> apram_model::ProcId {
        self.inner.proc()
    }
    fn n_procs(&self) -> usize {
        self.inner.n_procs()
    }
    fn n_regs(&self) -> usize {
        self.inner.n_regs() - self.base
    }
    fn read(&mut self, reg: usize) -> L {
        self.inner.read(self.base + reg)
    }
    fn write(&mut self, reg: usize, val: L) {
        self.inner.write(self.base + reg, val)
    }
}

#[test]
fn two_scan_objects_share_one_memory() {
    for seed in 0..10u64 {
        let n = 3;
        let max_obj = ScanObject::new(n);
        let set_obj = ScanObject::new(n);
        let set_base = max_obj.n_regs();
        let total = max_obj.n_regs() + set_obj.n_regs();
        let init: Vec<L> = (0..total).map(|_| JoinSemilattice::bottom()).collect();
        let mut owners = max_obj.owners();
        owners.extend(set_obj.owners());

        let set_rec: Recorder<ScanMaxOp<SetUnion<u64>>, ScanMaxResp<SetUnion<u64>>> =
            Recorder::new();
        let sr = set_rec.clone();

        let out = SimBuilder::new(init)
            .owners(owners)
            .strategy(SeededRandom::new(seed))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut max_h: ScanHandle<L> = ScanHandle::new(max_obj);
                let mut set_h: ScanHandle<L> = ScanHandle::new(set_obj);
                // Interleave operations on the two objects; the set object's
                // history is recorded and checked, the max object is
                // exercised alongside (its own checks live elsewhere).
                max_h.write_l(ctx, (MaxU64::new(p as u64 + 1), SetUnion::new()));

                sr.invoke(p, ScanMaxOp::WriteL(SetUnion::singleton(p as u64)));
                {
                    let mut off = Offset {
                        inner: ctx,
                        base: set_base,
                    };
                    set_h.write_l(&mut off, (MaxU64::new(0), SetUnion::singleton(p as u64)));
                }
                sr.respond(p, ScanMaxResp::Ack);

                let (m, _) = max_h.read_max(ctx);
                assert!(m.get() > p as u64, "own max write visible");

                sr.invoke(p, ScanMaxOp::ReadMax);
                let got = {
                    let mut off = Offset {
                        inner: ctx,
                        base: set_base,
                    };
                    set_h.read_max(&mut off).1
                };
                sr.respond(p, ScanMaxResp::Max(got));
            });
        out.assert_no_panics();

        // Each object's history checks against its own spec — locality.
        let set_hist = set_rec.snapshot();
        assert!(
            check_linearizable(
                &ScanMaxSpec::<SetUnion<u64>>::new(),
                &set_hist,
                &CheckerConfig::default()
            )
            .is_ok(),
            "seed {seed}: set object violated: {set_hist:?}"
        );
    }
}

/// The max-register component checked separately, under PCT schedules,
/// with the value encoding handled carefully (MaxU64's bottom is 0, so
/// use strictly positive payloads).
#[test]
fn shared_memory_max_component_linearizable() {
    for seed in 0..10u64 {
        let n = 3;
        let max_obj = ScanObject::new(n);
        let init: Vec<(MaxU64, SetUnion<u64>)> = (0..max_obj.n_regs())
            .map(|_| JoinSemilattice::bottom())
            .collect();
        let rec: Recorder<MaxRegOp, MaxRegResp> = Recorder::new();
        let rec2 = rec.clone();
        let mut strategy = Pct::new(seed, n, 3, 200);
        let out = SimBuilder::new(init)
            .owners(max_obj.owners())
            .strategy_ref(&mut strategy)
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut h: ScanHandle<(MaxU64, SetUnion<u64>)> = ScanHandle::new(max_obj);
                let v = (p as i64 + 1) * 10;
                rec2.invoke(p, MaxRegOp::WriteMax(v));
                h.write_l(ctx, (MaxU64::new(v as u64), SetUnion::new()));
                rec2.respond(p, MaxRegResp::Ack);
                rec2.invoke(p, MaxRegOp::Read);
                let (m, _) = h.read_max(ctx);
                rec2.respond(
                    p,
                    MaxRegResp::Value((m != MaxU64::new(0)).then(|| m.get() as i64)),
                );
            });
        out.assert_no_panics();
        let hist = rec.snapshot();
        assert!(
            check_linearizable(&MaxRegSpec, &hist, &CheckerConfig::default()).is_ok(),
            "seed {seed}: {hist:?}"
        );
    }
}
