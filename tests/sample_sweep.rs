//! End-to-end sampling & sweep acceptance (the tier-1 face of E11):
//! parallel sampling is bit-identical to sequential, PCT sampling finds
//! the known naive-collect linearizability anomaly within a 10k-schedule
//! budget and shrinks it through the witness pipeline, an interrupted
//! sweep resumes to bit-identical cell reports, and the Wilson interval
//! / histogram quantiles satisfy their defining properties under
//! randomized inputs.

#![allow(clippy::type_complexity)]

use apram_bench::sweep::run_sample_cell;
use apram_bench::{cell_file, resume_sweep, run_sweep, CellSched, SweepCell, SweepOpts, SweepPlan};
use apram_lattice::Tagged;
use apram_model::sim::{
    Budgeted, ProcBody, SampleConfig, Sampler, SimBuilder, SimCtx, SimOutcome, ViolationKind,
};
use apram_model::{wilson_interval, MemCtx, StepHistogram};
use apram_snapshot::collect::{naive_collect, CollectArray, DoubleCollect};
use std::path::PathBuf;
use std::time::Duration;

/// Same cell, same seed, different worker counts: the sampled report —
/// histogram, worst steps, exceedance CI, canonical violation — must be
/// bit-identical, because every budgeted run always executes and the
/// canonical violation is the lowest run index regardless of which
/// worker drew it.
#[test]
fn sample_reports_identical_across_thread_counts() {
    for sched in [CellSched::Random, CellSched::Pct(3)] {
        let cell = SweepCell {
            object: "afek".into(),
            n: 2,
            f: 1,
            sched,
            runs: 120,
            depth: 0,
        };
        let seed = cell.seed(42);
        let sequential = run_sample_cell(&cell, seed, 1).to_json().to_compact();
        let parallel = run_sample_cell(&cell, seed, 4).to_json().to_compact();
        assert_eq!(
            sequential,
            parallel,
            "thread count leaked into the {} report",
            cell.id()
        );
    }
}

/// The naive-collect scenario whose anomaly PCT must sample: P0 runs one
/// naive collect; P1 updates slot 1; P2 reads slot 1 and then updates
/// slot 2 with a value recording whether it saw P1's write. A view with
/// slot 1 empty but slot 2 holding the "saw P1" value is a genuine
/// atomicity violation: the collect reads slot 1 before slot 2, so it
/// observed a state after P2's (causally P1-dependent) write yet before
/// P1's — no linearization point exists.
fn naive_collect_pair() -> (
    impl FnMut() -> Vec<ProcBody<'static, Tagged<u32>, Vec<Option<u32>>>> + Send,
    impl FnMut(&SimOutcome<Tagged<u32>, Vec<Option<u32>>>) -> bool + Send,
) {
    let arr = CollectArray::new(3);
    let factory = move || {
        vec![
            Box::new(move |ctx: &mut SimCtx<Tagged<u32>>| naive_collect(&arr, ctx))
                as ProcBody<'static, Tagged<u32>, Vec<Option<u32>>>,
            Box::new(move |ctx: &mut SimCtx<Tagged<u32>>| {
                DoubleCollect::new(arr).update(ctx, 1);
                Vec::new()
            }),
            Box::new(move |ctx: &mut SimCtx<Tagged<u32>>| {
                let saw: Tagged<u32> = ctx.read(1);
                let v = if saw.value.is_some() { 2 } else { 9 };
                DoubleCollect::new(arr).update(ctx, v);
                vec![Some(v)]
            }),
        ]
    };
    let check = |out: &SimOutcome<Tagged<u32>, Vec<Option<u32>>>| {
        let Some(view) = &out.results[0] else {
            return true;
        };
        !(view[1].is_none() && view[2] == Some(2))
    };
    (factory, check)
}

#[test]
fn pct_sampling_finds_the_naive_collect_anomaly_within_10k_schedules() {
    let arr = CollectArray::new(3);
    let scfg = SampleConfig::new([64u64; 3])
        .sampler(Sampler::Pct { depth: 3 })
        .seed(1)
        .max_runs(10_000);
    let (factory, check) = naive_collect_pair();
    let report = SimBuilder::new(arr.registers::<u32>())
        .owners(arr.owners())
        .sample(&scfg, factory, check);
    assert_eq!(report.runs, 10_000);
    assert!(
        report.violations > 0,
        "PCT never sampled the anomaly: {report:?}"
    );
    let v = report.violation.as_ref().expect("canonical violation");
    assert!(
        matches!(v.cert.kind, ViolationKind::HistoryRejected),
        "expected a semantic rejection, got {:?}",
        v.cert.kind
    );
    // The shrink pipeline minimized the sampled witness: the anomaly
    // needs only P0's first two reads, P1's write, P2's read + write,
    // and P0's final read.
    assert!(
        v.cert.report.schedule.len() <= 8,
        "witness not minimized: {:?}",
        v.cert.report.schedule
    );
    // Random sampling finds it too (the anomaly is not PCT-specific).
    let (factory, check) = naive_collect_pair();
    let random = SimBuilder::new(arr.registers::<u32>())
        .owners(arr.owners())
        .sample(&scfg.clone().sampler(Sampler::Random), factory, check);
    assert!(random.violations > 0, "{random:?}");
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apram-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An interrupted sweep (stopped after 2 of 4 cells) resumed to
/// completion produces cell reports byte-identical to an uninterrupted
/// sweep of the same plan, and the resume pass re-runs nothing it
/// already has.
#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let plan = SweepPlan::from_json(
        r#"{
            "name": "resume-test",
            "seed": 11,
            "objects": ["scan", "lock"],
            "ns": [2],
            "fs": [1],
            "schedulers": ["random", "pct3"],
            "budget": {"runs": 80, "depth": 0}
        }"#,
    )
    .expect("valid plan");
    let opts = |max_cells| SweepOpts {
        threads: 2,
        max_cells,
        every: Duration::from_millis(200),
    };

    let interrupted = scratch_dir("interrupted");
    let first = run_sweep(&plan, &interrupted, &opts(Some(2))).expect("partial sweep");
    assert_eq!((first.total, first.skipped, first.completed), (4, 0, 2));
    assert!(!first.done());
    let second = resume_sweep(&interrupted, &opts(None)).expect("resume");
    assert_eq!((second.skipped, second.completed), (2, 2));
    assert!(second.done());

    let uninterrupted = scratch_dir("uninterrupted");
    let full = run_sweep(&plan, &uninterrupted, &opts(None)).expect("full sweep");
    assert_eq!((full.skipped, full.completed), (0, 4));

    for cell in plan.cells() {
        let a = std::fs::read(cell_file(&interrupted, &cell)).expect("resumed cell report");
        let b = std::fs::read(cell_file(&uninterrupted, &cell)).expect("full-run cell report");
        assert_eq!(
            a,
            b,
            "cell {} differs between resumed and uninterrupted sweeps",
            cell.id()
        );
    }
    // Run-directory bookkeeping survived the interruption.
    let manifest = std::fs::read_to_string(interrupted.join("manifest.json")).expect("manifest");
    let doc = apram_model::json::parse(&manifest).expect("manifest JSON");
    assert!(
        matches!(doc.get("done"), Some(apram_model::Json::Bool(true))),
        "{manifest}"
    );
    assert!(interrupted.join("heartbeat.jsonl").exists());

    let _ = std::fs::remove_dir_all(&interrupted);
    let _ = std::fs::remove_dir_all(&uninterrupted);
}

/// Randomized property check of the statistics E11 reports: the Wilson
/// interval brackets the point estimate inside [0, 1] with exact
/// boundary behavior and width shrinking in the sample count, and the
/// histogram quantiles are monotone in the quantile and bounded by the
/// exact max.
#[test]
fn wilson_interval_and_quantiles_hold_under_random_inputs() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let trials = rng.gen_range(1..=5_000u64);
        let successes = rng.gen_range(0..=trials);
        let (lo, hi) = wilson_interval(successes, trials, 1.96);
        let p_hat = successes as f64 / trials as f64;
        assert!(
            (0.0..=p_hat).contains(&lo) && (p_hat..=1.0).contains(&hi),
            "CI [{lo}, {hi}] fails to bracket {successes}/{trials}"
        );
        if successes == 0 {
            assert_eq!(lo, 0.0, "zero successes must pin the lower bound");
        }
        if successes == trials {
            assert_eq!(hi, 1.0, "all successes must pin the upper bound");
        }
    }
    // At a fixed rate, more trials always tighten the interval.
    let width = |trials: u64| {
        let (lo, hi) = wilson_interval(trials / 2, trials, 1.96);
        hi - lo
    };
    let widths: Vec<f64> = [10u64, 100, 1_000, 10_000]
        .iter()
        .map(|&t| width(t))
        .collect();
    assert!(
        widths.windows(2).all(|w| w[1] < w[0]),
        "interval widths not decreasing: {widths:?}"
    );

    // Histogram: bucketed quantiles are monotone and never exceed the
    // exact max; the recorded count matches the sample count.
    let hist = StepHistogram::new();
    let mut exact_max = 0u64;
    for _ in 0..2_000 {
        let v = rng.gen_range(0..=100_000u64);
        exact_max = exact_max.max(v);
        hist.record(v);
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, 2_000);
    assert_eq!(snap.max, exact_max);
    let qs: Vec<u64> = [0.5, 0.9, 0.99, 0.999]
        .iter()
        .map(|&q| snap.quantile(q))
        .collect();
    assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    assert!(*qs.last().unwrap() <= snap.max, "{qs:?} vs {}", snap.max);
}
