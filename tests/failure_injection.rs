//! Failure injection: wait-freedom means survivors finish no matter who
//! crashes and when; the lock-based baseline demonstrably does not have
//! this property (the paper's motivating contrast).

use apram_agreement::{AgreementProto, OneShotAgreement};
use apram_core::{CounterOp, CounterSpec, Universal};
use apram_lattice::SetUnion;
use apram_model::sim::strategy::SeededRandom;
use apram_model::sim::SimBuilder;
use apram_model::MemCtx;
use apram_objects::DirectCounter;
use apram_snapshot::lock::LockSnapshot;
use apram_snapshot::ScanObject;

/// Crash every process but one at staggered points; sweep the crash
/// points. The survivor of the scan object always finishes within its
/// fixed step budget.
#[test]
fn scan_survivor_sweep() {
    let n = 3;
    let obj = ScanObject::new(n);
    for c1 in [1u64, 5, 9, 13] {
        for c2 in [2u64, 7, 15] {
            let out = SimBuilder::new(obj.registers::<SetUnion<usize>>())
                .owners(obj.owners())
                .crashes([(1, c1), (2, c2)])
                .run_symmetric(n, move |ctx| obj.scan(ctx, SetUnion::singleton(ctx.proc())));
            out.assert_no_panics();
            let r = out.results[0]
                .as_ref()
                .unwrap_or_else(|| panic!("survivor stuck at crashes ({c1},{c2})"));
            assert!(r.contains(&0), "survivor sees its own value");
            assert_eq!(
                out.counts[0].total(),
                (n * n + n + 1 + n + 2) as u64,
                "survivor's step count is schedule-independent"
            );
        }
    }
}

/// Universal counter: survivor's operations all complete and reflect its
/// own updates, across crash-point sweeps.
#[test]
fn universal_counter_survivor_sweep() {
    let n = 3;
    let uni = Universal::new(n, CounterSpec);
    for c1 in [3u64, 11, 23] {
        for c2 in [5u64, 17] {
            let uni2 = uni.clone();
            let out = SimBuilder::new(uni.registers())
                .owners(uni.owners())
                .crashes([(1, c1), (2, c2)])
                .run_symmetric(n, move |ctx| {
                    let mut h = uni2.handle();
                    h.execute(ctx, CounterOp::Inc(5));
                    h.execute(ctx, CounterOp::Inc(5));
                    match h.execute(ctx, CounterOp::Read) {
                        apram_core::CounterResp::Value(v) => v,
                        _ => unreachable!(),
                    }
                });
            out.assert_no_panics();
            let v =
                out.results[0].unwrap_or_else(|| panic!("survivor stuck at crashes ({c1},{c2})"));
            assert!(v >= 10, "survivor's own incs visible: {v}");
        }
    }
}

/// Approximate agreement (two-process protocol and the fixed-round
/// n-process variant): a lone survivor always terminates with a valid
/// output.
#[test]
fn agreement_survivors() {
    // Figure 2, n = 2, crash the partner at various points.
    for crash_at in [0u64, 3, 8, 20] {
        let proto = AgreementProto::new(2, 0.25);
        let out = SimBuilder::new(proto.registers())
            .owners(proto.owners())
            .crashes([(1, crash_at)])
            .run_symmetric(2, move |ctx| {
                let mut h = proto.handle();
                h.input(ctx, ctx.proc() as f64);
                h.output(ctx)
            });
        out.assert_no_panics();
        let y = out.results[0].expect("survivor finishes");
        assert!((0.0..=1.0).contains(&y), "crash@{crash_at}: {y}");
    }
    // Fixed-round variant, n = 4, two crashes.
    let obj = OneShotAgreement::new(4, 0.1, 0.0, 1.0);
    let obj_ref = &obj;
    let out = SimBuilder::new(obj.registers())
        .owners(obj.owners())
        .crashes([(1, 30), (2, 70)])
        .run_symmetric(4, move |ctx| obj_ref.run(ctx, ctx.proc() as f64 / 3.0));
    out.assert_no_panics();
    let a = out.results[0].expect("P0 finishes");
    let b = out.results[3].expect("P3 finishes");
    assert!((a - b).abs() < 0.1, "survivors agree: {a} vs {b}");
}

/// Negative control: the mutex-based snapshot wedges permanently when a
/// lock holder dies — the precise failure mode wait-freedom excludes.
#[test]
fn lock_baseline_wedges_on_crash() {
    let obj: LockSnapshot<u64> = LockSnapshot::new(2);
    obj.update(0, 1);
    assert!(obj.try_snap().is_some(), "healthy lock serves snapshots");
    obj.crash_while_holding();
    for _ in 0..100 {
        assert!(obj.try_snap().is_none(), "wedged forever");
    }
    // Meanwhile the wait-free counter with the same fault keeps going.
    let n = 2;
    let cnt = DirectCounter::new(n);
    let out = SimBuilder::new(cnt.registers())
        .owners(cnt.owners())
        .crashes([(1, 4)]) // mid-operation
        .run_symmetric(n, move |ctx| {
            let mut h = cnt.handle();
            h.inc(ctx, 1);
            h.read(ctx)
        });
    out.assert_no_panics();
    assert!(out.results[0].is_some(), "wait-free survivor completes");
}

/// Crashes under random schedules: sweep seeds, crash two of four
/// processes at random-ish points, assert the survivors of the direct
/// counter always finish with consistent values.
#[test]
fn randomized_crash_sweep() {
    for seed in 0..10u64 {
        let n = 4;
        let cnt = DirectCounter::new(n);
        let out = SimBuilder::new(cnt.registers())
            .owners(cnt.owners())
            .strategy(SeededRandom::new(seed))
            .crashes([(1, 3 + seed % 7), (2, 9 + seed % 11)])
            .run_symmetric(n, move |ctx| {
                let mut h = cnt.handle();
                h.inc(ctx, 1);
                h.inc(ctx, 1);
                h.read(ctx)
            });
        out.assert_no_panics();
        for p in [0usize, 3] {
            let v = out.results[p].unwrap_or_else(|| panic!("seed {seed}: P{p} stuck"));
            assert!((2..=8).contains(&v), "seed {seed}: P{p} read {v}");
        }
    }
}
