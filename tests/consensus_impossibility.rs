//! The impossibility side of the paper's §1: "any object X that solves
//! consensus for two or more processes cannot be implemented without
//! randomization in a model that provides only simple reads and writes".
//!
//! Impossibility cannot be *tested* in general — but its footprint can:
//! every natural attempt at deterministic register-based binary
//! consensus must give up either agreement, validity, or wait-free
//! termination, and the exhaustive schedule explorer finds the failing
//! schedule mechanically. Three classic attempts are falsified below;
//! each failure is exactly the bivalence phenomenon the FLP-style
//! argument formalizes.

use apram_model::sim::explore::ExploreConfig;
use apram_model::sim::{ProcBody, SimBuilder, SimCtx};
use apram_model::MemCtx;

/// Attempt 1 — "write mine, read theirs, defer to the smaller id":
/// P writes its preference, reads the other's register, and returns the
/// other's value if visible (tie-break toward P0's value). Plausible —
/// and wrong: some interleaving makes the two processes return
/// different values.
#[test]
fn attempt_defer_to_peer_violates_agreement() {
    // Register p holds Option<bool>: process p's published preference.
    let prefs = [false, true];
    let make = move || {
        (0..2usize)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<Option<bool>>| {
                    let my = prefs[p];
                    ctx.write(p, Some(my));
                    match ctx.read(1 - p) {
                        // Deterministic rule: adopt P0's published value
                        // when both are visible.
                        Some(other) => {
                            if p == 0 {
                                my
                            } else {
                                other
                            }
                        }
                        None => my, // ran alone: must decide own input
                    }
                }) as ProcBody<'static, Option<bool>, bool>
            })
            .collect::<Vec<_>>()
    };
    let mut disagreement = false;
    SimBuilder::new(vec![None; 2]).owners(vec![0, 1]).explore(
        &ExploreConfig::default(),
        make,
        |out| {
            let (a, b) = (out.results[0].unwrap(), out.results[1].unwrap());
            if a != b {
                disagreement = true;
                return false;
            }
            true
        },
    );
    assert!(
        disagreement,
        "the explorer must find a disagreeing schedule"
    );
}

/// Attempt 2 — symmetric deference ("adopt whatever I see"): both adopt
/// the peer's value when visible. The schedule where both see each
/// other makes them *swap* preferences — disagreement again.
#[test]
fn attempt_mutual_deference_violates_agreement() {
    let prefs = [false, true];
    let make = move || {
        (0..2usize)
            .map(|p| {
                Box::new(move |ctx: &mut SimCtx<Option<bool>>| {
                    let my = prefs[p];
                    ctx.write(p, Some(my));
                    match ctx.read(1 - p) {
                        Some(other) => other, // defer to the peer
                        None => my,
                    }
                }) as ProcBody<'static, Option<bool>, bool>
            })
            .collect::<Vec<_>>()
    };
    let mut disagreement = false;
    SimBuilder::new(vec![None; 2]).owners(vec![0, 1]).explore(
        &ExploreConfig::default(),
        make,
        |out| {
            let (a, b) = (out.results[0].unwrap(), out.results[1].unwrap());
            if a != b {
                disagreement = true;
                return false;
            }
            true
        },
    );
    assert!(disagreement, "the swap schedule must disagree");
}

/// Attempt 3 — "wait until I see the other": achieves agreement-or-
/// deadlock by spinning, i.e. it gives up wait-freedom instead. Under a
/// crash (the other process never writes), the waiter exceeds any step
/// bound — exactly the trade the paper's introduction rules out
/// ("the failure or delay of a single process ... will prevent the
/// non-faulty processes from making progress").
#[test]
fn attempt_waiting_gives_up_wait_freedom() {
    let bodies: Vec<ProcBody<'static, Option<bool>, bool>> = vec![
        Box::new(move |ctx: &mut SimCtx<Option<bool>>| {
            ctx.write(0, Some(false));
            loop {
                // Spin until the peer's preference appears, then take
                // the pair's minimum — a correct *blocking* consensus.
                if let Some(other) = ctx.read(1) {
                    return false & other;
                }
            }
        }),
        Box::new(move |ctx: &mut SimCtx<Option<bool>>| {
            ctx.write(1, Some(true));
            loop {
                if let Some(other) = ctx.read(0) {
                    return other;
                }
            }
        }),
    ];
    // Crash P1 before its write: P0 spins forever; the step budget is
    // the only thing that stops the run.
    let out = SimBuilder::new(vec![None; 2])
        .owners(vec![0, 1])
        .max_steps(500)
        .crash_at(1, 0)
        .run(bodies);
    out.assert_no_panics();
    assert!(
        out.halted,
        "the waiter must still be spinning at the budget"
    );
    assert_eq!(out.results[0], None, "P0 never decides");
    assert!(out.counts[0].total() >= 490, "P0 burned the whole budget");
}

/// Contrast: the *sticky register* (write-once) would solve consensus in
/// two steps — which is exactly why `apram_core::verify` rejects it from
/// the constructible class (see `apram_objects::sticky`). Simulated here
/// directly on its sequential spec to close the loop.
#[test]
fn sticky_register_would_solve_consensus() {
    use apram_history::{DetSpec, ProcId};
    use apram_objects::sticky::{StickyOp, StickyResp, StickySpec};
    // A sequential sanity: first write wins, so "write mine, read the
    // winner" decides consistently regardless of order.
    let spec = StickySpec;
    for order in [[0usize, 1], [1, 0]] {
        let mut state = <StickySpec as DetSpec>::initial(&spec);
        let mut decisions = Vec::new();
        for &p in &order {
            spec.apply(&mut state, p as ProcId, &StickyOp::Write(p as u64));
        }
        for &p in &order {
            match spec.apply(&mut state, p as ProcId, &StickyOp::Read) {
                StickyResp::Value(Some(v)) => decisions.push(v),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(decisions[0], decisions[1], "sticky register agrees");
        assert_eq!(decisions[0], order[0] as u64, "first writer wins");
    }
}
