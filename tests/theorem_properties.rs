//! Cross-crate checks of the paper's theorem statements, at the level a
//! user of the library observes them.

use apram_agreement::spec::outputs_valid;
use apram_agreement::{AgreementProto, OneShotAgreement};
use apram_core::{CounterOp, CounterResp, CounterSpec, Universal};
use apram_lattice::{JoinSemilattice, SetUnion};
use apram_model::sim::strategy::{Pct, SeededRandom};
use apram_model::sim::SimBuilder;
use apram_model::MemCtx;
use apram_snapshot::{ScanHandle, ScanObject};

/// Theorem 5 for two processes, swept over ε and seeds: termination,
/// validity, ε-agreement, and the step envelope, all at once.
#[test]
fn theorem_5_two_process_sweep() {
    for k in 1..=6u32 {
        let eps = 2f64.powi(-(k as i32));
        let proto = AgreementProto::new(2, eps);
        for seed in 0..6u64 {
            let out = SimBuilder::new(proto.registers())
                .owners(proto.owners())
                .strategy(SeededRandom::new(seed))
                .run_symmetric(2, move |ctx| {
                    let mut h = proto.handle();
                    h.input(ctx, ctx.proc() as f64);
                    h.output(ctx)
                });
            let counts: Vec<u64> = out.counts.iter().map(|c| c.total()).collect();
            let ys = out.unwrap_results();
            assert!(
                outputs_valid(eps, &[0.0, 1.0], &ys),
                "k={k} seed={seed}: {ys:?}"
            );
            // Envelope: per round ≤ 3 snapshot-ish phases of (n²+n) ops.
            let scan_cost = (2 * 2 + 2) as u64;
            let bound = (3 * (k as u64 + 4) + 4) * scan_cost;
            for c in counts {
                assert!(c <= bound, "k={k} seed={seed}: {c} > {bound}");
            }
        }
    }
}

/// Lemma 32 at n = 4 under PCT schedules, with literal and optimized
/// scanners mixed: all returned joins are pairwise comparable.
#[test]
fn lemma_32_mixed_scanners_under_pct() {
    for seed in 0..12u64 {
        let n = 4;
        let obj = ScanObject::new(n);
        let mut strategy = Pct::new(seed, n, 4, 300);
        let out = SimBuilder::new(obj.registers::<SetUnion<usize>>())
            .owners(obj.owners())
            .strategy_ref(&mut strategy)
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut handle = ScanHandle::new(obj);
                let optimized = p % 2 == 0;
                let mut rets = Vec::new();
                for k in 0..2 {
                    let v = SetUnion::singleton(p * 10 + k);
                    rets.push(if optimized {
                        handle.scan(ctx, v)
                    } else {
                        obj.scan(ctx, v)
                    });
                }
                rets
            });
        let all: Vec<SetUnion<usize>> = out.unwrap_results().into_iter().flatten().collect();
        for a in &all {
            for b in &all {
                assert!(a.comparable(b), "seed {seed}: {a:?} / {b:?}");
            }
        }
    }
}

/// Corollary 27's determinism consequence: once the system is quiescent,
/// every process's next read of the universal counter returns the same
/// value — the canonical linearization is a pure function of the shared
/// graph, not of who computes it.
#[test]
fn universal_quiescent_reads_agree_exactly() {
    for seed in 0..10u64 {
        let n = 3;
        let uni = Universal::new(n, CounterSpec);
        let uni2 = uni.clone();
        // Phase 1 (concurrent): mixed updates. Phase 2 is modelled by
        // reading at the end of each body; since bodies may still
        // interleave, we instead check agreement after the run using
        // fresh reads against the final memory.
        let out = SimBuilder::new(uni.registers())
            .owners(uni.owners())
            .strategy(SeededRandom::new(seed))
            .run_symmetric(n, move |ctx| {
                let p = ctx.proc();
                let mut h = uni2.handle();
                match p {
                    0 => {
                        h.execute(ctx, CounterOp::Inc(3));
                        h.execute(ctx, CounterOp::Dec(1));
                    }
                    1 => {
                        h.execute(ctx, CounterOp::Reset(100));
                    }
                    _ => {
                        h.execute(ctx, CounterOp::Inc(10));
                    }
                }
            });
        out.assert_no_panics();
        // Quiescence: replay the final shared graph from each process's
        // perspective via unpublished reads on the final memory.
        let mem = apram_model::NativeMemory::new(n, out.memory.clone());
        let mut values = Vec::new();
        for p in 0..n {
            let mut h = uni.handle();
            let mut ctx = mem.ctx(p);
            match h.execute_unpublished(&mut ctx, CounterOp::Read) {
                CounterResp::Value(v) => values.push(v),
                other => panic!("{other:?}"),
            }
        }
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: quiescent reads disagree: {values:?}"
        );
    }
}

/// The one-shot variant's round formula: R = ⌈log₂(Δ/ε)⌉ + 1, clamped
/// to 1 when the range is already below ε; and the output spread indeed
/// shrinks with R.
#[test]
fn oneshot_round_formula_and_convergence() {
    assert_eq!(OneShotAgreement::new(3, 1.0, 0.0, 0.5).rounds(), 1);
    assert_eq!(OneShotAgreement::new(3, 0.5, 0.0, 1.0).rounds(), 2);
    assert_eq!(OneShotAgreement::new(3, 0.125, 0.0, 1.0).rounds(), 4);
    assert_eq!(OneShotAgreement::new(3, 0.1, 0.0, 1.0).rounds(), 5);

    for eps in [0.5, 0.1, 0.01] {
        let inputs = [0.0f64, 0.37, 1.0];
        let n = inputs.len();
        let obj = OneShotAgreement::new(n, eps, 0.0, 1.0);
        let obj_ref = &obj;
        let inputs_ref = &inputs;
        let out = SimBuilder::new(obj.registers())
            .owners(obj.owners())
            .strategy(SeededRandom::new(42))
            .run_symmetric(n, move |ctx| obj_ref.run(ctx, inputs_ref[ctx.proc()]));
        let ys = out.unwrap_results();
        assert!(outputs_valid(eps, &inputs, &ys), "eps={eps}: {ys:?}");
    }
}

/// Register-operation budgets compose: a universal counter execute costs
/// exactly two optimized scans regardless of which spec it hosts —
/// checked here for the grow-set spec (E5 generalizes beyond counters).
#[test]
fn universal_cost_is_spec_independent() {
    use apram_objects::growset::{GrowSetSpec, SetOp};
    for n in [2usize, 4] {
        let uni = Universal::new(n, GrowSetSpec);
        let uni2 = uni.clone();
        let out = SimBuilder::new(uni.registers())
            .owners(uni.owners())
            .strategy(apram_model::sim::strategy::RoundRobin::new())
            .run_symmetric(n, move |ctx| {
                let mut h = uni2.handle();
                h.execute(ctx, SetOp::Add(ctx.proc() as u64));
            });
        out.assert_no_panics();
        for p in 0..n {
            assert_eq!(out.counts[p].reads, 2 * (n * n - 1) as u64, "n={n} P{p}");
            assert_eq!(out.counts[p].writes, 2 * (n as u64 + 1), "n={n} P{p}");
        }
    }
}
