//! Soak: larger randomized native runs over every object, checked by
//! exact invariants (history checking is exponential, so at this scale
//! we assert the algebraic ground truth instead: totals, maxima, unions,
//! uniqueness). Guards the deep-history paths — entry-chain drops,
//! replay memoization, scan-cache reuse — at sizes the unit tests do not
//! reach.

use apram_model::NativeMemory;
use apram_objects::growset::DirectGrowSet;
use apram_objects::maxreg::DirectMaxRegister;
use apram_objects::prmw::{AddOp, PrmwRegister};
use apram_objects::{DirectCounter, LamportClock, MwRegister, UniversalCounter};
use std::collections::HashSet;

const THREADS: usize = 4;

#[test]
fn direct_counter_soak() {
    let per = 300u64;
    let cnt = DirectCounter::new(THREADS);
    let mem = NativeMemory::new(THREADS, cnt.registers()).with_owners(cnt.owners());
    std::thread::scope(|s| {
        for p in 0..THREADS {
            let mem = mem.clone();
            let mut h = cnt.handle();
            s.spawn(move || {
                let mut ctx = mem.ctx(p);
                for k in 0..per {
                    if k % 3 == 2 {
                        h.dec(&mut ctx, 1);
                    } else {
                        h.inc(&mut ctx, 2);
                    }
                }
            });
        }
    });
    // per-thread: 100 decs (−100) + 200 incs (+400) = +300.
    assert_eq!(cnt.audit_total(|r| mem.peek(r)), (THREADS as i64) * 300);
}

#[test]
fn max_register_and_set_soak() {
    let per = 200usize;
    let reg = DirectMaxRegister::new(THREADS);
    let rmem = NativeMemory::new(THREADS, reg.registers()).with_owners(reg.owners());
    let set = DirectGrowSet::new(THREADS);
    let smem = NativeMemory::new(THREADS, set.registers()).with_owners(set.owners());
    let finals: Vec<(Option<i64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|p| {
                let rmem = rmem.clone();
                let smem = smem.clone();
                let mut rh = reg.handle();
                let mut sh = set.handle();
                s.spawn(move || {
                    let mut rctx = rmem.ctx(p);
                    let mut sctx = smem.ctx(p);
                    for k in 0..per {
                        rh.write_max(&mut rctx, (p * per + k) as i64);
                        sh.add(&mut sctx, (p * per + k) as u64);
                    }
                    (rh.read(&mut rctx), sh.elements(&mut sctx).len())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let true_max = (THREADS * per - 1) as i64;
    // Every thread's final read includes its own last write; at least
    // one thread must have observed the global maximum's neighborhood,
    // and no thread may exceed it.
    for (p, (m, set_len)) in finals.iter().enumerate() {
        let m = m.expect("register was written");
        assert!(m <= true_max);
        assert!(m >= (p * per + per - 1) as i64, "own maximum visible");
        assert!(*set_len >= per, "own inserts visible");
        assert!(*set_len <= THREADS * per);
    }
}

#[test]
fn lamport_clock_soak_uniqueness() {
    let per = 150usize;
    let clk = LamportClock::new(THREADS);
    let mem = NativeMemory::new(THREADS, clk.registers()).with_owners(clk.owners());
    let stamps: Vec<Vec<apram_objects::clock::Stamp>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|p| {
                let mem = mem.clone();
                let mut h = clk.handle();
                s.spawn(move || {
                    let mut ctx = mem.ctx(p);
                    (0..per).map(|_| h.tick(&mut ctx)).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut seen = HashSet::new();
    for (p, mine) in stamps.iter().enumerate() {
        for w in mine.windows(2) {
            assert!(w[0] < w[1], "P{p}: stamps must be strictly increasing");
        }
        for st in mine {
            assert!(seen.insert(*st), "duplicate stamp {st:?}");
        }
    }
    assert_eq!(seen.len(), THREADS * per);
}

#[test]
fn prmw_soak_exact_total() {
    let per = 120u64;
    let reg: PrmwRegister<AddOp> = PrmwRegister::new(THREADS, 0);
    let mem = NativeMemory::new(THREADS, reg.registers()).with_owners(reg.owners());
    std::thread::scope(|s| {
        for p in 0..THREADS {
            let mem = mem.clone();
            let mut h = reg.handle();
            s.spawn(move || {
                let mut ctx = mem.ctx(p);
                for k in 0..per {
                    h.apply(&mut ctx, AddOp(k % 5 + 1));
                }
                let v = h.read(&mut ctx);
                // Own contribution: Σ (k%5 + 1) over k.
                let own: u64 = (0..per).map(|k| k % 5 + 1).sum();
                assert!(v >= own);
            });
        }
    });
}

#[test]
fn mw_register_soak_last_value_wins() {
    let per = 250u64;
    let reg = MwRegister::new(THREADS);
    let mem = NativeMemory::new(THREADS, reg.registers::<u64>()).with_owners(reg.owners());
    std::thread::scope(|s| {
        for p in 0..THREADS {
            let mem = mem.clone();
            s.spawn(move || {
                let mut ctx = mem.ctx(p);
                for k in 0..per {
                    reg.write(&mut ctx, (p as u64) * per + k);
                    let got = reg.read::<u64, _>(&mut ctx).expect("written");
                    // What we read is at least as recent as our own
                    // write by timestamp order; values are unique, and
                    // monotone per reader in (tag, author) order, which
                    // we can't see — but the value must be one actually
                    // written.
                    assert!(got < (THREADS as u64) * per);
                }
            });
        }
    });
    // Quiescent: all processes agree on one final value.
    let mut finals = Vec::new();
    for p in 0..THREADS {
        let mut ctx = mem.ctx(p);
        finals.push(reg.read::<u64, _>(&mut ctx).unwrap());
    }
    assert!(finals.windows(2).all(|w| w[0] == w[1]), "{finals:?}");
}

#[test]
fn universal_counter_soak_with_memo() {
    // Deep enough to exercise the replay memo and the iterative drop,
    // small enough for the quadratic replay: 40 ops/thread × 3 threads.
    let per = 40i64;
    let n = 3;
    let cnt = UniversalCounter::new(n);
    let mem = NativeMemory::new(n, cnt.registers()).with_owners(cnt.owners());
    std::thread::scope(|s| {
        for p in 0..n {
            let mem = mem.clone();
            let mut h = cnt.handle();
            s.spawn(move || {
                let mut ctx = mem.ctx(p);
                for _ in 0..per {
                    h.inc(&mut ctx, 1);
                }
                let v = h.read_unpublished(&mut ctx);
                assert!(v >= per, "own increments visible: {v}");
                assert!(v <= per * n as i64);
            });
        }
    });
    // Quiescent read sees everything.
    let mut h = cnt.handle();
    let mut ctx = mem.ctx(0);
    assert_eq!(h.read_unpublished(&mut ctx), per * n as i64);
}
