//! A self-contained, offline drop-in replacement for the subset of the
//! `rand` crate API this workspace uses.
//!
//! The workspace only ever needs *seeded, reproducible* randomness
//! (`StdRng::seed_from_u64` + `gen_range`/`gen_bool`); no OS entropy, no
//! thread-local RNGs, no distributions beyond uniform ranges. This crate
//! implements exactly that on top of xoshiro256** seeded via splitmix64
//! — both public-domain algorithms — so the workspace builds with no
//! network access and no external dependencies.
//!
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`, so code
//! that pinned seed-specific *outcomes* (rather than reproducibility)
//! must re-derive its seeds.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only form the workspace uses).
pub trait SeedableRng: Sized {
    /// Build an RNG whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256** (Blackman–Vigna).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot
        // produce four zero words from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A half-open or inclusive range a uniform sample can be drawn from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Debiased multiply-shift (Lemire). The retry loop terminates with
    // overwhelming probability; bias without it would already be < 2⁻⁶⁴·n.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = r.gen_range(-2.0..4.0);
            assert!((-2.0..4.0).contains(&z));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_below_covers_all_residues() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
