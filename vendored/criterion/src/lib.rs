//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses: `Criterion`, `benchmark_group`, `bench_with_input`,
//! `bench_function`, `Bencher::{iter, iter_custom}`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a plain timing loop — no warm-up statistics, no outlier
//! analysis, no HTML reports. `--test` mode (used by `cargo bench --
//! --test` in CI) runs each benchmark body exactly once to check it
//! executes, matching real criterion's smoke-test behaviour. Results are
//! printed one line per benchmark.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a benchmark's throughput is reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures to drive the measured loop.
pub struct Bencher<'a> {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    elapsed: &'a mut Duration,
    iters_done: &'a mut u64,
}

impl Bencher<'_> {
    /// Time `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            *self.iters_done = 1;
            return;
        }
        // One calibration call, then enough iterations to roughly fill
        // the measurement window (capped so cheap bodies don't spin long).
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let want = (self.measurement_time.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let iters = want.max(self.sample_size as u64);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
        *self.iters_done = iters;
    }

    /// Time `routine(iters)`, which must return the measured duration of
    /// `iters` executions (setup excluded by the caller).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        if self.test_mode {
            *self.elapsed = routine(1);
            *self.iters_done = 1;
            return;
        }
        let iters = self.sample_size as u64;
        *self.elapsed = routine(iters);
        *self.iters_done = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration (ignored by this shim).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the throughput used for reporting subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `routine` with `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher<'_>, &I),
    {
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed: &mut elapsed,
            iters_done: &mut iters,
        };
        routine(&mut b, input);
        self.report(&id.id, elapsed, iters);
        self
    }

    /// Benchmark `routine` with no input.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed: &mut elapsed,
            iters_done: &mut iters,
        };
        routine(&mut b);
        self.report(&id, elapsed, iters);
        self
    }

    fn report(&self, id: &str, elapsed: Duration, iters: u64) {
        if self.criterion.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
            return;
        }
        let per_iter = if iters > 0 {
            elapsed.as_nanos() as f64 / iters as f64
        } else {
            0.0
        };
        match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let rate = n as f64 / (per_iter / 1e9);
                println!(
                    "{}/{}: {per_iter:.1} ns/iter, {rate:.0} elem/s",
                    self.name, id
                );
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                let rate = n as f64 / (per_iter / 1e9);
                println!("{}/{}: {per_iter:.1} ns/iter, {rate:.0} B/s", self.name, id);
            }
            _ => println!("{}/{}: {per_iter:.1} ns/iter", self.name, id),
        }
    }

    /// Finish the group (reporting already happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// Benchmark manager; entry point handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for a single smoke run per bench.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<R>(&mut self, id: impl Into<String>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher<'_>),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, routine);
        self
    }

    /// Run configured target functions (invoked by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut calls = 0u32;
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        g.finish();
        assert_eq!(calls, 1); // test mode: exactly one call

        let mut g = c.benchmark_group("g2");
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                Duration::from_millis(2)
            });
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("scan", 8).id, "scan/8");
        assert_eq!(BenchmarkId::from_parameter(3).id, "3");
    }
}
