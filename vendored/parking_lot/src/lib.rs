//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses: `Mutex` and `RwLock` with non-poisoning `lock` /
//! `read` / `write` that return guards directly.
//!
//! Implemented as thin wrappers over `std::sync`; a poisoned std lock
//! (a panic while held) is recovered rather than propagated, matching
//! parking_lot's semantics of never poisoning.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
