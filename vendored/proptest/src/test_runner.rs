//! Imperative test-runner interface (`TestRunner::run`).

use crate::strategy::{Strategy, TestRng};

/// Property-test configuration: just the case count in this shim.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A rejected or failed test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A failed property run.
#[derive(Clone, Debug)]
pub struct TestError {
    /// Which case failed (0-based).
    pub case: u32,
    /// The failure message.
    pub message: String,
}

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "property failed at case {}: {}", self.case, self.message)
    }
}

/// Runs a property against generated cases.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner {
            config: ProptestConfig::default(),
            rng: TestRng::new(0x5EED_u64),
        }
    }
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: TestRng::new(0x5EED_u64),
        }
    }

    /// Run `test` against `config.cases` generated values.
    pub fn run<S: Strategy, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            if let Err(e) = test(value) {
                return Err(TestError {
                    case,
                    message: e.to_string(),
                });
            }
        }
        Ok(())
    }
}
