//! Value-generation strategies (no shrinking).

use crate::arbitrary::Arbitrary;
use crate::collection::SizeRange;
use std::marker::PhantomData;

/// The deterministic RNG driving generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary state.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// An RNG seeded from a test name, so each test sees a stable but
    /// distinct stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A generator of values of type `Value`.
///
/// Object-safe for `generate`; the combinators require `Sized`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (retries generation; panics
    /// after a bounded number of rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for Box<S> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<V, S: Strategy<Value = V> + ?Sized> Strategy for &S {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Any value of `T` (via [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] combinator.
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy for `Vec`s (see [`crate::collection::vec`]).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
