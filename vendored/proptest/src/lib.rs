//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses: deterministic property testing with strategy
//! combinators, **without shrinking**.
//!
//! Supported surface: integer/float range strategies, `any::<T>()`,
//! `Just`, tuples, `prop_map`, `prop_oneof!`, `collection::vec`,
//! the `proptest!` macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `test_runner::TestRunner`. Failing cases are reported by ordinary
//! panics with the generated inputs in the test name's loop index; there
//! is no shrinking and no persistence (regression files are ignored).
//!
//! Generation is seeded from a hash of the test-function name, so every
//! run of a given test sees the same cases.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec()`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`, with
    /// lengths drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A strategy producing `BTreeSet`s of values drawn from `element`.
    ///
    /// `size` bounds the number of *draws*; duplicates collapse, so the
    /// resulting set may be smaller (same caveat as real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            inner: vec(element, size),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        inner: VecStrategy<S>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut super::strategy::TestRng) -> Self::Value {
            self.inner.generate(rng).into_iter().collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property test (panics — no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when `cond` is false.
///
/// Expands to an early `return Ok(())` from the per-case closure the
/// `proptest!` macro wraps each body in (the closure returns
/// `Result<(), TestCaseError>`, matching real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Choose uniformly among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..10, v in proptest::collection::vec(any::<bool>(), 0..4)) {
///         prop_assert!(x < 10 && v.len() < 4);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::strategy::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __run = || {
                        $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )*
                        let mut __case_body = move ||
                            -> ::core::result::Result<(), $crate::test_runner::TestCaseError>
                        {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        };
                        if let ::core::result::Result::Err(e) = __case_body() {
                            panic!("test case failed at input #{}: {}", __case, e);
                        }
                    };
                    __run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_and_maps(x in evens(), b in any::<bool>(), (lo, hi) in (0u32..5, 5u32..10)) {
            prop_assert!(x.is_multiple_of(2) && x < 200);
            prop_assert!(lo < hi);
            let _ = b;
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0usize..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn assume_discards(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_accepted(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!((1u8..=2u8).contains(&x));
        }
    }

    #[test]
    fn runner_reports_failure() {
        use crate::test_runner::TestRunner;
        let mut runner = TestRunner::default();
        let ok = runner.run(&(0u64..10), |x| {
            prop_assert!(x < 10);
            Ok(())
        });
        assert!(ok.is_ok());
        let bad = runner.run(&(0u64..10), |x| {
            if x >= 5 {
                Err(crate::test_runner::TestCaseError::fail("too big"))
            } else {
                Ok(())
            }
        });
        assert!(bad.is_err());
    }
}
