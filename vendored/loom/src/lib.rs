//! Offline drop-in subset of the `loom` model checker's API.
//!
//! This container has no network access, so the real `loom` crate cannot
//! be fetched. This shim keeps the `--cfg loom` build and the loom-gated
//! tests *compiling and running* against the same API surface:
//!
//! * the instrumented types (`cell::UnsafeCell`, `sync::atomic::*`)
//!   degrade to their `std` counterparts — accesses execute, but are not
//!   checked against alternative interleavings;
//! * [`model`] degrades to running the closure repeatedly (a schedule
//!   stress, not an exhaustive exploration);
//! * `thread::spawn`/`yield_now` are `std`'s.
//!
//! Code written against this subset is source-compatible with real loom:
//! swapping this path dependency for `loom = "0.7"` upgrades the same
//! tests to exhaustive model checking with no source changes. The tests
//! remain valuable offline — they exercise the protocol under real
//! preemption many times per run — but a green run here is evidence, not
//! proof. See `crates/model/tests/loom_native.rs`.

/// How many times [`model`] re-runs the closure. Real loom explores
/// every interleaving; the shim settles for many independent runs under
/// the OS scheduler.
pub const MODEL_ITERS: usize = 64;

/// Run `f` under the "model checker". Offline degradation: execute the
/// closure [`MODEL_ITERS`] times so distinct OS-level interleavings get
/// a chance to occur. Real loom replaces this with exhaustive
/// enumeration of all schedules.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..MODEL_ITERS {
        f();
    }
}

pub mod cell {
    //! Instrumented interior mutability (degraded: raw `std` cell).

    /// API-compatible stand-in for `loom::cell::UnsafeCell`: access goes
    /// through `with`/`with_mut` closures, which is where real loom
    /// checks for concurrent conflicts. The shim just hands out the
    /// pointer.
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// A new cell holding `value`.
        pub fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Run `f` with a shared pointer to the contents.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Run `f` with an exclusive pointer to the contents.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

pub mod sync {
    //! Instrumented sync primitives (degraded: `std::sync`).

    pub use std::sync::Arc;

    pub mod atomic {
        //! Instrumented atomics (degraded: `std::sync::atomic`).
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

pub mod thread {
    //! Instrumented threads (degraded: `std::thread`).
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_closure_many_times() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        super::model(|| {
            RUNS.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(RUNS.load(Ordering::Relaxed), super::MODEL_ITERS);
    }

    #[test]
    fn cell_with_and_with_mut() {
        let c = super::cell::UnsafeCell::new(1u32);
        c.with_mut(|p| unsafe { *p = 5 });
        assert_eq!(c.with(|p| unsafe { *p }), 5);
    }
}
