#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json reports, ignoring wall-clock.

Usage: scripts/compare_bench.py BASELINE_DIR CANDIDATE_DIR [--ignore KEY]...

Every experiment in this repo is deterministic modulo wall-clock columns,
so a regenerated report must equal the archived baseline once the
timing-derived keys are stripped (recursively): `wall_clock_secs`,
`wall_secs`, `runs_per_sec`, `speedup`, plus any `--ignore KEY` extras.

Exit status: 0 if every common file matches, 1 otherwise. Files present
on only one side are reported but only fail the comparison when missing
from the candidate.
"""

import json
import sys
from pathlib import Path

VOLATILE = {"wall_clock_secs", "wall_secs", "runs_per_sec", "speedup"}


def strip(doc, ignored):
    if isinstance(doc, dict):
        return {k: strip(v, ignored) for k, v in doc.items() if k not in ignored}
    if isinstance(doc, list):
        return [strip(v, ignored) for v in doc]
    return doc


def first_diff(a, b, path="$"):
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a or k not in b:
                return f"{path}.{k}: present on one side only"
            d = first_diff(a[k], b[k], f"{path}.{k}")
            if d:
                return d
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            d = first_diff(x, y, f"{path}[{i}]")
            if d:
                return d
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def main(argv):
    args, ignored = [], set(VOLATILE)
    it = iter(argv)
    for tok in it:
        if tok == "--ignore":
            ignored.add(next(it, "") or sys.exit("--ignore needs a KEY"))
        else:
            args.append(tok)
    if len(args) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    base, cand = Path(args[0]), Path(args[1])

    failed = False
    base_files = sorted(base.glob("BENCH_*.json"))
    if not base_files:
        sys.exit(f"no BENCH_*.json under {base}")
    for bf in base_files:
        cf = cand / bf.name
        if not cf.exists():
            print(f"MISSING  {bf.name} (not in {cand})")
            failed = True
            continue
        a = strip(json.loads(bf.read_text()), ignored)
        b = strip(json.loads(cf.read_text()), ignored)
        d = first_diff(a, b)
        if d:
            print(f"DIFF     {bf.name}: {d}")
            failed = True
        else:
            print(f"OK       {bf.name}")
    for cf in sorted(cand.glob("BENCH_*.json")):
        if not (base / cf.name).exists():
            print(f"NEW      {cf.name} (no baseline yet)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
