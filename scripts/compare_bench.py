#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json reports, ignoring wall-clock.

Usage: scripts/compare_bench.py BASELINE_DIR CANDIDATE_DIR [--ignore KEY]...
       scripts/compare_bench.py --e13-gate BENCH_e13.json [--min-ratio R]
       scripts/compare_bench.py --e14-gate BENCH_e14.json [--min-ratio R]
       scripts/compare_bench.py --e15-gate BENCH_e15.json

Every experiment in this repo is deterministic modulo wall-clock columns,
so a regenerated report must equal the archived baseline once the
timing-derived keys are stripped (recursively): `wall_clock_secs`,
`wall_secs`, `runs_per_sec`, `speedup`, plus any `--ignore KEY` extras.

E13/E14 (the native register-file scaling and flight-recorder overhead
grids) are the wall-clock experiments: their measured columns
(`ops_per_sec`, the latency percentiles, the buffered tier's
`read_retries`, E14's flight-log counts, and the whole `gates` /
`spot_check` sections) are stripped too, so the directory comparison
still checks the deterministic skeleton — the thread grid, the
object x tier/mode matrix, and the operation counts.

`--e13-gate` instead checks one report's performance *relations*, which
are machine-speed-independent: the packed counter must beat the
rwlock-baseline counter at 8 threads by at least `--min-ratio` (default
1.0), and — only when the report's `available_parallelism` exceeds 1 —
8-thread packed-counter throughput must exceed 1-thread throughput.

`--e14-gate` checks the flight-recorder overhead and spot-check gates:
1-in-64 sampling must keep at least `--min-ratio` (default 0.95) of
recorder-off counter throughput summed across the thread grid, every
spot-checked native history must be linearizable (with at least one
history checked), and the spot-check runs must have dropped no events.

`--e15-gate` checks the serving-layer SLO + audit gates: worst-case op
latency percentiles across the grid inside their budgets
(`slo_within_budget`), the offline audit sound (at least one history,
zero recorder drops) and clean (every sampled history linearizable),
and every crash scenario survived (`crash_survivors_completed`: the
killed tenant reconnected and all tenants finished their budgets).

Exit status: 0 if every common file matches (or the gate holds),
1 otherwise. Files present on only one side are reported but only fail
the comparison when missing from the candidate.
"""

import json
import sys
from pathlib import Path

VOLATILE = {
    "wall_clock_secs",
    "wall_secs",
    "runs_per_sec",
    "speedup",
    # E13's measured columns (everything wall-clock- or machine-derived).
    "elapsed_secs",
    "ops_per_sec",
    "p50_ns",
    "p99_ns",
    "p999_ns",
    "max_ns",
    "mean_ns",
    "read_retries",
    "gates",
    # E14's flight-log columns (event volume depends on timing once
    # drop-oldest engages) and the spot-check verdict section.
    "ticket_draws",
    "events_recorded",
    "events_drained",
    "events_dropped",
    "retry_events",
    "contended_draws",
    "sampled_spans",
    "spot_check",
    # E15's timing-dependent columns: when the killed tenant dies and
    # how often it has to retry the reconnect both depend on scheduling.
    "crash_reconnects",
    "audit_spans",
}


def e13_gate(path, min_ratio):
    """Check the E13 gate relations in one report. Returns exit status."""
    with open(path) as f:
        doc = json.load(f)
    gates = doc.get("gates")
    if not gates:
        print(f"FAIL     {path}: no 'gates' section")
        return 1
    parallelism = gates.get("available_parallelism", 1)
    ratio = gates.get("packed_over_rwlock_8t")
    if ratio is None:
        print(f"FAIL     {path}: packed_over_rwlock_8t missing (null?)")
        return 1
    failed = False
    if ratio >= min_ratio:
        print(f"OK       packed/rwlock at 8 threads = {ratio:.2f}x "
              f"(>= {min_ratio})")
    else:
        print(f"FAIL     packed/rwlock at 8 threads = {ratio:.2f}x "
              f"(< {min_ratio})")
        failed = True
    scaling = gates.get("packed_8t_over_1t")
    if parallelism <= 1:
        print(f"SKIP     8t/1t scaling gate (available_parallelism = "
              f"{parallelism})")
    elif scaling is None:
        print(f"FAIL     {path}: packed_8t_over_1t missing (null?)")
        failed = True
    elif scaling > 1.0:
        print(f"OK       packed 8t/1t = {scaling:.2f}x on "
              f"{parallelism}-way host")
    else:
        print(f"FAIL     packed 8t/1t = {scaling:.2f}x on "
              f"{parallelism}-way host (expected > 1)")
        failed = True
    return 1 if failed else 0


def e14_gate(path, min_ratio):
    """Check the E14 overhead and spot-check gates. Returns exit status."""
    with open(path) as f:
        doc = json.load(f)
    gates = doc.get("gates")
    if not gates:
        print(f"FAIL     {path}: no 'gates' section")
        return 1
    failed = False
    ratio = gates.get("sampled_over_off_counter")
    if ratio is None:
        print(f"FAIL     {path}: sampled_over_off_counter missing (null?)")
        failed = True
    elif ratio >= min_ratio:
        print(f"OK       sampled/off counter throughput = {ratio:.3f} "
              f"(>= {min_ratio})")
    else:
        print(f"FAIL     sampled/off counter throughput = {ratio:.3f} "
              f"(< {min_ratio}: 1-in-64 sampling costs too much)")
        failed = True
    histories = gates.get("spotcheck_histories", 0)
    if histories > 0:
        print(f"OK       spot-check covered {histories} histories")
    else:
        print(f"FAIL     spot-check covered no histories")
        failed = True
    dropped = gates.get("spotcheck_dropped")
    if dropped == 0:
        print(f"OK       spot-check runs dropped no events")
    else:
        print(f"FAIL     spot-check runs dropped {dropped} events "
              f"(histories incomplete)")
        failed = True
    if gates.get("spotcheck_all_linearizable") is True:
        print(f"OK       every spot-checked native history linearizable")
    else:
        print(f"FAIL     spot-check found a non-linearizable history "
              f"(see the report's spot_check.failures)")
        failed = True
    return 1 if failed else 0


def e15_gate(path, min_ratio):
    """Check the E15 SLO + audit gates. Returns exit status."""
    del min_ratio  # the SLO budgets live in the report itself
    with open(path) as f:
        doc = json.load(f)
    gates = doc.get("gates")
    if not gates:
        print(f"FAIL     {path}: no 'gates' section")
        return 1
    failed = False
    if gates.get("slo_within_budget") is True:
        print(f"OK       SLO within budget: worst p50/p99/p999 = "
              f"{gates.get('worst_p50_ns')}/{gates.get('worst_p99_ns')}/"
              f"{gates.get('worst_p999_ns')} ns")
    else:
        print(f"FAIL     SLO breached: worst p50/p99/p999 = "
              f"{gates.get('worst_p50_ns')}/{gates.get('worst_p99_ns')}/"
              f"{gates.get('worst_p999_ns')} ns vs budgets "
              f"{gates.get('p50_budget_ns')}/{gates.get('p99_budget_ns')}/"
              f"{gates.get('p999_budget_ns')}")
        failed = True
    histories = gates.get("audit_histories", 0)
    if histories > 0:
        print(f"OK       audit covered {histories} histories")
    else:
        print(f"FAIL     audit covered no histories")
        failed = True
    dropped = gates.get("audit_dropped")
    if dropped == 0:
        print(f"OK       audit recorders dropped no events")
    else:
        print(f"FAIL     audit recorders dropped {dropped} events "
              f"(histories incomplete)")
        failed = True
    if gates.get("audit_all_linearizable") is True:
        print(f"OK       every audited history linearizable")
    else:
        print(f"FAIL     audit found a non-linearizable history "
              f"(see the report's audit_failures)")
        failed = True
    if gates.get("crash_survivors_completed") is True:
        print(f"OK       crash scenarios survived: every tenant finished")
    else:
        print(f"FAIL     a crash scenario did not complete (stalled "
              f"tenant or missing reconnect)")
        failed = True
    return 1 if failed else 0


def strip(doc, ignored):
    if isinstance(doc, dict):
        return {k: strip(v, ignored) for k, v in doc.items() if k not in ignored}
    if isinstance(doc, list):
        return [strip(v, ignored) for v in doc]
    return doc


def first_diff(a, b, path="$"):
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            if k not in a or k not in b:
                return f"{path}.{k}: present on one side only"
            d = first_diff(a[k], b[k], f"{path}.{k}")
            if d:
                return d
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            d = first_diff(x, y, f"{path}[{i}]")
            if d:
                return d
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


def main(argv):
    args, ignored = [], set(VOLATILE)
    gate_file, gate_fn, min_ratio = None, None, None
    it = iter(argv)
    for tok in it:
        if tok == "--ignore":
            ignored.add(next(it, "") or sys.exit("--ignore needs a KEY"))
        elif tok == "--e13-gate":
            gate_file = next(it, "") or sys.exit("--e13-gate needs a FILE")
            gate_fn, default_ratio = e13_gate, 1.0
        elif tok == "--e14-gate":
            gate_file = next(it, "") or sys.exit("--e14-gate needs a FILE")
            gate_fn, default_ratio = e14_gate, 0.95
        elif tok == "--e15-gate":
            gate_file = next(it, "") or sys.exit("--e15-gate needs a FILE")
            gate_fn, default_ratio = e15_gate, 0.0
        elif tok == "--min-ratio":
            min_ratio = float(next(it, "") or sys.exit("--min-ratio needs R"))
        else:
            args.append(tok)
    if gate_file is not None:
        if args:
            sys.exit("gate mode takes no directory operands")
        return gate_fn(gate_file,
                       default_ratio if min_ratio is None else min_ratio)
    if len(args) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    base, cand = Path(args[0]), Path(args[1])

    failed = False
    base_files = sorted(base.glob("BENCH_*.json"))
    if not base_files:
        sys.exit(f"no BENCH_*.json under {base}")
    for bf in base_files:
        cf = cand / bf.name
        if not cf.exists():
            print(f"MISSING  {bf.name} (not in {cand})")
            failed = True
            continue
        a = strip(json.loads(bf.read_text()), ignored)
        b = strip(json.loads(cf.read_text()), ignored)
        d = first_diff(a, b)
        if d:
            print(f"DIFF     {bf.name}: {d}")
            failed = True
        else:
            print(f"OK       {bf.name}")
    for cf in sorted(cand.glob("BENCH_*.json")):
        if not (base / cf.name).exists():
            print(f"NEW      {cf.name} (no baseline yet)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
